"""Dense bivariate polynomials in two formal variables ``x`` and ``y``.

Bivariate generating functions appear in two places in the paper:

* Rank-position probabilities (Example 3): the coefficient of ``x**(j-1) * y``
  equals the probability that a tuple alternative is ranked at position ``j``.
* Expected Jaccard distance (Lemma 1): the coefficient of ``x**i * y**j``
  equals the probability of the worlds at a specific Jaccard distance from a
  candidate world.

Coefficients are stored in a dense list-of-lists indexed as
``coefficients[i][j]`` = coefficient of ``x**i * y**j``.  Both variables
support independent degree truncation which keeps Top-k computations
polynomial in ``k``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from repro.engine import get_backend

Number = Union[int, float]


def _trimmed(rows: List[List[Number]]) -> List[List[Number]]:
    """Trim trailing all-zero rows and columns, keeping at least one cell."""
    max_j = 0
    for row in rows:
        for j in range(len(row) - 1, -1, -1):
            if row[j] != 0:
                max_j = max(max_j, j)
                break
    max_i = 0
    for i in range(len(rows) - 1, -1, -1):
        if any(c != 0 for c in rows[i]):
            max_i = i
            break
    out = []
    for i in range(max_i + 1):
        row = rows[i][: max_j + 1]
        row = row + [0] * (max_j + 1 - len(row))
        out.append(row)
    return out


class BivariatePolynomial:
    """A dense polynomial in two variables ``x`` and ``y``.

    Parameters
    ----------
    coefficients:
        Nested iterable where ``coefficients[i][j]`` is the coefficient of
        ``x**i * y**j``.
    max_degree_x, max_degree_y:
        Optional truncation degrees.  Terms with a larger exponent in the
        corresponding variable are discarded by every operation.
    """

    __slots__ = ("_rows", "_max_degree_x", "_max_degree_y")

    def __init__(
        self,
        coefficients: Iterable[Iterable[Number]] = ((0,),),
        max_degree_x: int | None = None,
        max_degree_y: int | None = None,
    ) -> None:
        rows = [list(row) for row in coefficients]
        if not rows:
            rows = [[0]]
        if max_degree_x is not None:
            rows = rows[: max_degree_x + 1]
        if max_degree_y is not None:
            rows = [row[: max_degree_y + 1] for row in rows]
        rows = [row if row else [0] for row in rows]
        self._rows = _trimmed(rows)
        self._max_degree_x = max_degree_x
        self._max_degree_y = max_degree_y

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(
        cls, max_degree_x: int | None = None, max_degree_y: int | None = None
    ) -> "BivariatePolynomial":
        """The zero polynomial."""
        return cls([[0]], max_degree_x=max_degree_x, max_degree_y=max_degree_y)

    @classmethod
    def constant(
        cls,
        value: Number,
        max_degree_x: int | None = None,
        max_degree_y: int | None = None,
    ) -> "BivariatePolynomial":
        """A constant polynomial."""
        return cls(
            [[value]], max_degree_x=max_degree_x, max_degree_y=max_degree_y
        )

    @classmethod
    def one(
        cls, max_degree_x: int | None = None, max_degree_y: int | None = None
    ) -> "BivariatePolynomial":
        """The constant polynomial 1."""
        return cls.constant(1, max_degree_x, max_degree_y)

    @classmethod
    def variable_x(
        cls, max_degree_x: int | None = None, max_degree_y: int | None = None
    ) -> "BivariatePolynomial":
        """The polynomial ``x``."""
        return cls(
            [[0], [1]], max_degree_x=max_degree_x, max_degree_y=max_degree_y
        )

    @classmethod
    def variable_y(
        cls, max_degree_x: int | None = None, max_degree_y: int | None = None
    ) -> "BivariatePolynomial":
        """The polynomial ``y``."""
        return cls(
            [[0, 1]], max_degree_x=max_degree_x, max_degree_y=max_degree_y
        )

    @classmethod
    def monomial(
        cls,
        coefficient: Number,
        exponent_x: int,
        exponent_y: int,
        max_degree_x: int | None = None,
        max_degree_y: int | None = None,
    ) -> "BivariatePolynomial":
        """The polynomial ``coefficient * x**exponent_x * y**exponent_y``."""
        if exponent_x < 0 or exponent_y < 0:
            raise ValueError("exponents must be non-negative")
        rows = [[0] * (exponent_y + 1) for _ in range(exponent_x + 1)]
        rows[exponent_x][exponent_y] = coefficient
        return cls(rows, max_degree_x=max_degree_x, max_degree_y=max_degree_y)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rows(self) -> Sequence[Sequence[Number]]:
        """The coefficient matrix (read-only view)."""
        return tuple(tuple(row) for row in self._rows)

    @property
    def degree_x(self) -> int:
        """Highest exponent of ``x`` with a non-trimmed coefficient."""
        return len(self._rows) - 1

    @property
    def degree_y(self) -> int:
        """Highest exponent of ``y`` with a non-trimmed coefficient."""
        return len(self._rows[0]) - 1

    def coefficient(self, exponent_x: int, exponent_y: int) -> Number:
        """Return the coefficient of ``x**exponent_x * y**exponent_y``."""
        if exponent_x < 0 or exponent_y < 0:
            raise ValueError("exponents must be non-negative")
        if exponent_x >= len(self._rows):
            return 0
        row = self._rows[exponent_x]
        if exponent_y >= len(row):
            return 0
        return row[exponent_y]

    def terms(self) -> List[Tuple[int, int, Number]]:
        """Return all non-zero terms as ``(exponent_x, exponent_y, coeff)``."""
        out = []
        for i, row in enumerate(self._rows):
            for j, coeff in enumerate(row):
                if coeff != 0:
                    out.append((i, j, coeff))
        return out

    def evaluate(self, x: Number, y: Number) -> Number:
        """Evaluate the polynomial at ``(x, y)``."""
        total: Number = 0
        x_power: Number = 1
        for row in self._rows:
            partial: Number = 0
            for coeff in reversed(row):
                partial = partial * y + coeff
            total += partial * x_power
            x_power *= x
        return total

    def sum_of_coefficients(self) -> Number:
        """Return the sum of all coefficients (value at ``x = y = 1``)."""
        return sum(sum(row) for row in self._rows)

    def coefficients_of_y(self, exponent_y: int) -> List[Number]:
        """Return the univariate (in ``x``) coefficient list of ``y**exponent_y``.

        This is the extraction used in Example 3: taking the part of the
        generating function that is linear in ``y`` gives the distribution of
        the number of higher-ranked tuples conditioned on the marked leaf
        being present.
        """
        return [self.coefficient(i, exponent_y) for i in range(len(self._rows))]

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _result_limits(
        self, other: "BivariatePolynomial"
    ) -> Tuple[int | None, int | None]:
        def combine(a: int | None, b: int | None) -> int | None:
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return (
            combine(self._max_degree_x, other._max_degree_x),
            combine(self._max_degree_y, other._max_degree_y),
        )

    def __add__(self, other: object) -> "BivariatePolynomial":
        if isinstance(other, (int, float)):
            other = BivariatePolynomial.constant(other)
        if not isinstance(other, BivariatePolynomial):
            return NotImplemented
        limit_x, limit_y = self._result_limits(other)
        nx = max(len(self._rows), len(other._rows))
        ny = max(len(self._rows[0]), len(other._rows[0]))
        rows = [
            [
                self.coefficient(i, j) + other.coefficient(i, j)
                for j in range(ny)
            ]
            for i in range(nx)
        ]
        return BivariatePolynomial(
            rows, max_degree_x=limit_x, max_degree_y=limit_y
        )

    __radd__ = __add__

    def __sub__(self, other: object) -> "BivariatePolynomial":
        if isinstance(other, (int, float)):
            other = BivariatePolynomial.constant(other)
        if not isinstance(other, BivariatePolynomial):
            return NotImplemented
        return self + (other * -1)

    def __mul__(self, other: object) -> "BivariatePolynomial":
        if isinstance(other, (int, float)):
            rows = [[c * other for c in row] for row in self._rows]
            return BivariatePolynomial(
                rows,
                max_degree_x=self._max_degree_x,
                max_degree_y=self._max_degree_y,
            )
        if not isinstance(other, BivariatePolynomial):
            return NotImplemented
        limit_x, limit_y = self._result_limits(other)
        out_x = len(self._rows) + len(other._rows) - 1
        out_y = len(self._rows[0]) + len(other._rows[0]) - 1
        if limit_x is not None:
            out_x = min(out_x, limit_x + 1)
        if limit_y is not None:
            out_y = min(out_y, limit_y + 1)
        rows = get_backend().convolve2d(
            self._rows, other._rows, out_x, out_y
        )
        return BivariatePolynomial(
            rows, max_degree_x=limit_x, max_degree_y=limit_y
        )

    __rmul__ = __mul__

    def __neg__(self) -> "BivariatePolynomial":
        return self * -1

    # ------------------------------------------------------------------
    # Comparisons / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BivariatePolynomial):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(tuple(tuple(row) for row in self._rows))

    def almost_equal(
        self, other: "BivariatePolynomial", tolerance: float = 1e-9
    ) -> bool:
        """Return True when every coefficient differs by at most tolerance."""
        nx = max(len(self._rows), len(other._rows))
        ny = max(len(self._rows[0]), len(other._rows[0]))
        return all(
            abs(self.coefficient(i, j) - other.coefficient(i, j)) <= tolerance
            for i in range(nx)
            for j in range(ny)
        )

    def __repr__(self) -> str:
        terms = []
        for i, j, coeff in self.terms():
            part = f"{coeff}"
            if i:
                part += f"*x^{i}" if i > 1 else "*x"
            if j:
                part += f"*y^{j}" if j > 1 else "*y"
            terms.append(part)
        body = " + ".join(terms) if terms else "0"
        return f"BivariatePolynomial({body})"
