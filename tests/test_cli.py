"""The ``repro`` CLI: argparse fallback, rich rendering, typer wiring."""

import os
import sys
import threading
import time
import types

import pytest

from repro.cli import main
from repro.cli.main import EXIT_ERROR, EXIT_OK, build_parser, render_table
from repro.models import ShardedDatabase
from repro.query.answers import QueryAnswer
from repro.server import ServerThread
from repro.workloads import random_tuple_independent_database

K = 3


@pytest.fixture()
def server():
    database = random_tuple_independent_database(24, rng=21)
    sharded = ShardedDatabase(database, 4)
    with sharded:
        with ServerThread(sharded, max_inflight=16) as thread:
            yield thread


def endpoint(thread):
    return ["--host", thread.host, "--port", str(thread.port)]


# ----------------------------------------------------------------------
# argparse fallback (the live path in the base image: no typer, no rich)
# ----------------------------------------------------------------------
class TestArgparseCli:
    def test_parser_builds_and_rejects_garbage(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["no_such_command"])

    def test_health(self, server, capsys):
        assert main(["health"] + endpoint(server)) == EXIT_OK
        output = capsys.readouterr().out
        assert "status" in output and "ok" in output
        assert "shard_count" in output

    def test_query_renders_provenance(self, server, capsys):
        code = main(
            ["query", "mean_topk_footrule", "-k", str(K)] + endpoint(server)
        )
        assert code == EXIT_OK
        output = capsys.readouterr().out
        assert "answer" in output
        assert "route" in output and "exact" in output
        assert "expected_distance" in output

    def test_query_json_output_decodes(self, server, capsys):
        code = main(
            ["query", "top_k_membership", "-k", str(K), "--json"]
            + endpoint(server)
        )
        assert code == EXIT_OK
        answer = QueryAnswer.from_json(capsys.readouterr().out.strip())
        assert answer.kind == "top_k_membership"
        assert answer.deployment == "served"

    def test_query_param_values_parse_as_json(self, server, capsys):
        code = main(
            [
                "query",
                "mean_topk_footrule",
                "-k",
                str(K),
                "--param",
                "weight=0.5",
            ]
            + endpoint(server)
        )
        # Unknown params are ignored by the legacy dispatch, so this
        # exercises the encode path end to end.
        assert code == EXIT_OK
        assert "answer" in capsys.readouterr().out

    def test_query_bad_kind_is_clean_error(self, server, capsys):
        code = main(["query", "no_such_kind"] + endpoint(server))
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_explain(self, server, capsys):
        code = main(
            ["explain", "mean_topk_footrule", "-k", str(K)] + endpoint(server)
        )
        assert code == EXIT_OK
        output = capsys.readouterr().out
        assert "fingerprint:" in output
        assert "route:" in output
        assert "hardness:" in output

    def test_explain_needs_kind_or_fingerprint(self, server, capsys):
        code = main(["explain"] + endpoint(server))
        assert code == EXIT_ERROR

    def test_top_renders_tables(self, server, capsys):
        client = server.client()
        try:
            from repro.serving.requests import QueryRequest

            client.metrics()
            for _ in range(3):
                client.query(QueryRequest.make("global_topk", K))
        finally:
            client.close()
        code = main(["top", "--interval", "0.05"] + endpoint(server))
        assert code == EXIT_OK
        output = capsys.readouterr().out
        assert "qps" in output
        assert "p95" in output
        assert "admissions" in output

    def test_connection_error_is_clean(self, capsys):
        code = main(
            ["health", "--host", "127.0.0.1", "--port", "1", "--timeout", "2"]
        )
        assert code == EXIT_ERROR
        assert "connection error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# serve subcommand smoke (bounded runtime + ephemeral port)
# ----------------------------------------------------------------------
class TestServeCommand:
    def test_serve_boots_and_answers(self, tmp_path, capsys):
        address_file = tmp_path / "address"
        worker = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--scenario",
                    "movie_ratings",
                    "--scale",
                    "2",
                    "--shards",
                    "2",
                    "--port",
                    "0",
                    "--runtime-s",
                    "8",
                    "--address-file",
                    str(address_file),
                ],
            ),
            daemon=True,
        )
        worker.start()
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if address_file.exists() and address_file.read_text():
                break
            time.sleep(0.05)
        host, port = address_file.read_text().split(":")
        assert main(["health", "--host", host, "--port", port]) == EXIT_OK
        code = main(
            [
                "query",
                "top_k_membership",
                "-k",
                "2",
                "--host",
                host,
                "--port",
                port,
            ]
        )
        assert code == EXIT_OK
        worker.join(timeout=30.0)
        assert not worker.is_alive()


# ----------------------------------------------------------------------
# rich-present path: tables render through rich when it imports
# ----------------------------------------------------------------------
class _FakeRichTable:
    instances = []

    def __init__(self, title=None):
        self.title = title
        self.columns = []
        self.rows = []
        _FakeRichTable.instances.append(self)

    def add_column(self, header):
        self.columns.append(header)

    def add_row(self, *cells):
        self.rows.append(cells)


class _FakeRichConsole:
    def __init__(self, file=None):
        self.file = file

    def print(self, table):
        print(
            f"[rich] {table.title}: {len(table.rows)} rows x "
            f"{len(table.columns)} cols",
            file=self.file,
        )


@pytest.fixture()
def fake_rich(monkeypatch):
    rich = types.ModuleType("rich")
    console_module = types.ModuleType("rich.console")
    console_module.Console = _FakeRichConsole
    table_module = types.ModuleType("rich.table")
    table_module.Table = _FakeRichTable
    rich.console = console_module
    rich.table = table_module
    monkeypatch.setitem(sys.modules, "rich", rich)
    monkeypatch.setitem(sys.modules, "rich.console", console_module)
    monkeypatch.setitem(sys.modules, "rich.table", table_module)
    monkeypatch.delenv("REPRO_CLI_PLAIN", raising=False)
    _FakeRichTable.instances.clear()
    yield rich


class TestRichRendering:
    def test_render_table_uses_rich_when_importable(self, fake_rich, capsys):
        render_table("demo", ["a", "b"], [[1, 2], [3, 4]])
        assert "[rich] demo: 2 rows x 2 cols" in capsys.readouterr().out

    def test_health_renders_rich_table(self, fake_rich, server, capsys):
        assert main(["health"] + endpoint(server)) == EXIT_OK
        assert "[rich]" in capsys.readouterr().out
        assert any(
            table.columns == ["field", "value"]
            for table in _FakeRichTable.instances
        )

    def test_plain_env_forces_fallback(self, fake_rich, server, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CLI_PLAIN", "1")
        assert main(["health"] + endpoint(server)) == EXIT_OK
        assert "[rich]" not in capsys.readouterr().out

    def test_broken_rich_falls_back_to_plain(self, server, capsys, monkeypatch):
        broken = types.ModuleType("rich.table")

        class _Exploding:
            def __init__(self, *args, **kwargs):
                raise RuntimeError("rich broke")

        broken.Table = _Exploding
        rich = types.ModuleType("rich")
        console_module = types.ModuleType("rich.console")
        console_module.Console = _FakeRichConsole
        monkeypatch.setitem(sys.modules, "rich", rich)
        monkeypatch.setitem(sys.modules, "rich.console", console_module)
        monkeypatch.setitem(sys.modules, "rich.table", broken)
        assert main(["health"] + endpoint(server)) == EXIT_OK
        output = capsys.readouterr().out
        assert "status" in output  # plain table still rendered


# ----------------------------------------------------------------------
# typer-present path: commands wire through a typer-like application
# ----------------------------------------------------------------------
class _FakeTyperApp:
    """A minimal stand-in honouring the slice of typer the CLI uses:
    ``Typer(...)``, ``@app.command()`` and ``app(args=..., prog_name=...)``
    with ``--option value`` parsing against the command's defaults."""

    def __init__(self, **kwargs):
        self.commands = {}

    def command(self, *args, **kwargs):
        def register(function):
            self.commands[function.__name__] = function
            return function

        return register

    def __call__(self, args=None, prog_name=None, **kwargs):
        args = list(args or [])
        if not args or args[0] not in self.commands:
            raise SystemExit(2)
        function = self.commands[args[0]]
        positional = []
        options = {}
        rest = args[1:]
        index = 0
        while index < len(rest):
            token = rest[index]
            if token.startswith("--"):
                name = token[2:].replace("-", "_")
                options[name] = rest[index + 1]
                index += 2
            else:
                positional.append(token)
                index += 1
        import inspect

        signature = inspect.signature(function)
        bound = {}
        parameters = list(signature.parameters.values())
        for value, parameter in zip(positional, parameters):
            bound[parameter.name] = value
        for name, value in options.items():
            parameter = signature.parameters[name]
            default = parameter.default
            if isinstance(default, bool):
                bound[name] = value in ("1", "true", "True")
            elif isinstance(default, int):
                bound[name] = int(value)
            elif isinstance(default, float):
                bound[name] = float(value)
            elif default is None:
                # Optional[...] parameters: mimic typer's annotation-based
                # coercion with a numeric-first heuristic.
                for caster in (int, float):
                    try:
                        bound[name] = caster(value)
                        break
                    except ValueError:
                        continue
                else:
                    bound[name] = value
            else:
                bound[name] = value
        function(**bound)


@pytest.fixture()
def fake_typer(monkeypatch):
    typer = types.ModuleType("typer")
    typer.Typer = _FakeTyperApp
    monkeypatch.setitem(sys.modules, "typer", typer)
    monkeypatch.delenv("REPRO_CLI_PLAIN", raising=False)
    yield typer


class TestTyperWiring:
    def test_health_routes_through_typer_app(self, fake_typer, server, capsys):
        code = main(
            ["health", "--host", server.host, "--port", str(server.port)]
        )
        assert code == EXIT_OK
        assert "status" in capsys.readouterr().out

    def test_query_routes_through_typer_app(self, fake_typer, server, capsys):
        code = main(
            [
                "query",
                "global_topk",
                "--k",
                str(K),
                "--host",
                server.host,
                "--port",
                str(server.port),
            ]
        )
        assert code == EXIT_OK
        assert "answer" in capsys.readouterr().out

    def test_plain_env_skips_typer(self, fake_typer, server, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CLI_PLAIN", "1")
        # The fake typer app would explode on argparse-style "-k"; forcing
        # the plain path must route around it entirely.
        code = main(
            ["query", "global_topk", "-k", str(K)] + endpoint(server)
        )
        assert code == EXIT_OK
