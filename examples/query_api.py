"""The declarative query API: connect(), Query builders, and explain().

Builds a movie-ratings-style database, connects to it locally and sharded,
and runs the same declarative queries through both -- printing the
planner's ``explain()`` output for a PTIME distance (footrule: exact
min-cost assignment, Section 5.4) and an NP-hard one (Kendall tau: the
planner drops to pivot aggregation plus Monte-Carlo estimation with
CI-driven sample sizing, Section 5.5).  The closing section shows the
self-tuning layers: the cross-session result cache replaying a completed
answer, ``execute_many`` fusing a multi-depth batch into one rank-matrix
sweep, and ``explain()`` citing measured (calibrated) kernel rates.

Run with ``PYTHONPATH=src python examples/query_api.py``.
"""

from __future__ import annotations

import repro
from repro import Query
from repro.workloads.scenarios import movie_rating_scenario

K = 5


def main() -> None:
    scenario = movie_rating_scenario()
    database = scenario.database
    print(f"scenario: {scenario.name} ({len(database)} movies)\n")

    # ------------------------------------------------------------------
    # One facade, every deployment.
    # ------------------------------------------------------------------
    connection = repro.connect(database)
    print(f"connected: {connection!r}\n")

    # ------------------------------------------------------------------
    # A PTIME distance: the planner picks the exact kernel.
    # ------------------------------------------------------------------
    footrule = Query.topk(k=K).distance("footrule")
    print("-- explain(footrule): PTIME, exact route " + "-" * 24)
    print(connection.explain(footrule))
    answer = connection.execute(footrule)
    print(
        f"\nanswer: {answer.answer}\n"
        f"expected footrule distance: {answer.expected_distance:.4f}\n"
        f"provenance: route={answer.plan.route}, "
        f"paper={answer.provenance()['paper']}, "
        f"elapsed={answer.elapsed * 1000:.2f}ms\n"
    )

    # ------------------------------------------------------------------
    # An NP-hard distance: the planner drops to Monte-Carlo estimation.
    # ------------------------------------------------------------------
    kendall = Query.topk(k=K).distance("kendall").sampled(2000)
    print("-- explain(kendall): NP-hard, sampling route " + "-" * 20)
    print(connection.explain(kendall))
    answer = connection.execute(kendall, rng=7)
    low, high = answer.confidence_interval(0.95)
    print(
        f"\nanswer: {answer.answer}\n"
        f"estimated Kendall distance: {answer.expected_distance:.3f} "
        f"(95% CI [{low:.3f}, {high:.3f}], "
        f"{answer.estimate.samples} samples)\n"
    )

    # Ask for a precision target instead of a sample count: the sampler
    # draws batches until the confidence interval is tight enough.
    precise = connection.execute(
        Query.topk(k=K).distance("kendall").epsilon(0.1), rng=7
    )
    print(
        f"epsilon=0.1 run: {precise.estimate.samples} samples, "
        f"CI half-width "
        f"{(lambda ci: (ci[1] - ci[0]) / 2)(precise.confidence_interval()):.3f}\n"
    )

    # ------------------------------------------------------------------
    # The same queries against a 4-shard deployment: identical answers,
    # merged exactly from per-shard partial statistics.
    # ------------------------------------------------------------------
    sharded = repro.connect(database, shards=4)
    print("-- sharded deployment " + "-" * 42)
    print(sharded.explain(footrule))
    sharded_answer = sharded.execute(footrule)
    local_answer = connection.execute(footrule)
    print(
        f"\nsharded answer == local answer: "
        f"{sharded_answer.value == local_answer.value}"
    )

    # Consensus worlds and baselines ride the same facade.
    world = connection.execute(Query.set_consensus())
    print(
        f"mean consensus world (Theorem 2): {len(world.answer)} "
        f"alternatives, expected distance {world.expected_distance:.3f}"
    )
    baseline = connection.execute(Query.ranking("global", K))
    print(f"Global-Top-{K} baseline: {baseline.value}")

    info = connection.cache_info()
    print(
        f"\nsession cache after the run: {info.hits} hits / "
        f"{info.misses} misses ({info.hit_rate:.0%} hit rate)"
    )

    # ------------------------------------------------------------------
    # Self-tuning: warm result cache, fused batches, calibrated costs.
    # ------------------------------------------------------------------
    print("\n-- self-tuning planner " + "-" * 41)
    # Completed answers replay from the cross-session result cache while
    # the database (and backend) stay unchanged: the second execution is
    # the first one's QueryAnswer, served without planning or compute.
    warm = connection.execute(footrule)
    print(
        f"repeated footrule query: cached={warm.cached} "
        f"({connection.result_cache!r})"
    )

    # A batch wanting the rank-matrix artifact at several depths fuses
    # into one k_max sweep; the smaller depths are answered from exact
    # column-prefix slices of it.
    batch = [Query.membership(k) for k in (3, 5, 10)]
    answers = connection.execute_many(batch)
    print(
        "fused membership batch (k=3/5/10): "
        + ", ".join(f"{len(answer.value)} rows" for answer in answers)
    )

    # explain() reports measured wall-clock estimates once the planner
    # has a calibration table for this host (micro-probed at first use,
    # or fitted from benchmarks/results/ timing documents).
    est_line = next(
        line
        for line in connection.explain(footrule).splitlines()
        if "est. time" in line
    )
    print(f"calibrated cost estimate: {est_line.strip()}")


if __name__ == "__main__":
    main()
