"""Tests for consensus worlds under the Jaccard distance (Lemmas 1-2)."""

from __future__ import annotations

import math

import pytest

from repro.andxor.enumeration import enumerate_worlds
from repro.consensus.jaccard import (
    expected_jaccard_distance_to_world,
    mean_world_jaccard_tuple_independent,
    median_world_jaccard_bid,
)
from repro.consensus.set_consensus import is_possible_world
from repro.core.consensus_bruteforce import (
    brute_force_mean_world_jaccard,
    brute_force_median_world,
    expected_distance,
)
from repro.core.distances import jaccard_distance
from tests.conftest import small_bid, small_tuple_independent, small_xtuple


class TestLemma1ExpectedDistance:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_enumeration(self, seed):
        for tree in (
            small_tuple_independent(seed, count=4).tree,
            small_bid(seed, blocks=3).tree,
            small_xtuple(seed, groups=3).tree,
        ):
            distribution = enumerate_worlds(tree)
            alternatives = tree.alternatives()
            candidates = [
                frozenset(),
                frozenset(alternatives[:1]),
                frozenset(alternatives[:3]),
                frozenset(alternatives),
            ]
            for candidate in candidates:
                closed_form = expected_jaccard_distance_to_world(tree, candidate)
                oracle = expected_distance(
                    candidate,
                    distribution,
                    answer_of=lambda w: w.alternatives,
                    distance=jaccard_distance,
                )
                assert math.isclose(closed_form, oracle, abs_tol=1e-9)


class TestLemma2MeanWorld:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_prefix_scan_is_globally_optimal(self, seed):
        """Lemma 2: for tuple-independent databases the best prefix of the
        probability-sorted order is the global mean world."""
        database = small_tuple_independent(seed, count=5)
        tree = database.tree
        distribution = enumerate_worlds(tree)
        answer, value = mean_world_jaccard_tuple_independent(tree)
        _, oracle_value = brute_force_mean_world_jaccard(distribution)
        assert math.isclose(value, oracle_value, abs_tol=1e-9)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_answer_is_probability_prefix(self, seed):
        database = small_tuple_independent(seed, count=5)
        tree = database.tree
        answer, _ = mean_world_jaccard_tuple_independent(tree)
        if not answer:
            return
        threshold = min(tree.alternative_probability(a) for a in answer)
        for alternative in tree.alternatives():
            if tree.alternative_probability(alternative) > threshold + 1e-12:
                assert alternative in answer


class TestBidMedianWorld:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_median_is_possible_world(self, seed):
        tree = small_bid(seed, blocks=4).tree
        answer, value = median_world_jaccard_bid(tree)
        assert is_possible_world(tree, answer)
        # Its value matches the closed-form evaluation.
        assert math.isclose(
            value, expected_jaccard_distance_to_world(tree, answer), abs_tol=1e-12
        )

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_median_close_to_bruteforce(self, seed):
        """The paper's prefix-of-best-alternatives algorithm for the BID
        median; verify it matches the brute-force median on random
        non-exhaustive instances (where every prefix is a possible world)."""
        tree = small_bid(seed, blocks=4).tree
        distribution = enumerate_worlds(tree)
        answer, value = median_world_jaccard_bid(tree)
        _, oracle_value = brute_force_median_world(
            distribution, distance=jaccard_distance
        )
        assert value >= oracle_value - 1e-9
        # The prefix algorithm should be exact on these instances.
        assert math.isclose(value, oracle_value, abs_tol=1e-6)
