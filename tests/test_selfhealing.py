"""Self-healing serving suite.

The acceptance bar for the robustness layer: a killed or wedged shard
worker must be respawned under the supervisor's budget with staged
rebuilds replayed (never silently lost); queries must honour per-request
deadlines and retry transient worker failures within a bounded budget;
when a shard stays down, reads degrade explicitly (``stale=True`` /
``degraded=True`` provenance, never silent wrong answers) and updates
queue bounded or fail typed; stop/close must never hang or leak
processes mid-flight or mid-restart; and every failure path must be
reproducible from a seeded :class:`~repro.sharding.faults.FaultSchedule`.

Run under ``REPRO_PROC_START_METHOD=spawn`` in CI alongside the procpool
suite to catch fork-only pickling bugs in the respawn path.
"""

from __future__ import annotations

import asyncio
import math
import multiprocessing
import time

import pytest

from conftest import small_tuple_independent
from repro.exceptions import (
    DeadlineExceededError,
    ProcessPoolError,
    ShardUnavailableError,
    WorkerCrashError,
    WorkloadError,
)
from repro.models import ShardedDatabase
from repro.serving import QueryRequest, ServingExecutor
from repro.serving.metrics import ServingMetrics
from repro.sharding import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    IpcSnapshot,
    SupervisorPolicy,
    WorkerSupervisor,
)
from repro.session import QuerySession
from repro.workloads import chaos_replay, chaos_summary, update_heavy_traffic
from repro.workloads.generators import random_tuple_independent_database

TOLERANCE = 1e-9
K = 4

#: Deterministic query kinds only (no Monte-Carlo), so two replays of the
#: same stream against equal databases are comparable to 1e-9.
EXACT_MIX = {
    "mean_topk_symmetric_difference": 3.0,
    "mean_topk_footrule": 2.0,
    "top_k_membership": 2.0,
}

#: Restart fast and generously in tests: no waiting, no budget pressure.
FAST_SUPERVISION = SupervisorPolicy(
    max_restarts=10, backoff_base=0.0, jitter=0.0, seed=0
)


def assert_value_parity(expected, actual, tol=TOLERANCE):
    if isinstance(expected, dict):
        assert set(expected) == set(actual)
        for key in expected:
            assert_value_parity(expected[key], actual[key], tol)
    elif isinstance(expected, (tuple, list)):
        assert len(expected) == len(actual)
        for left, right in zip(expected, actual):
            assert_value_parity(left, right, tol)
    elif isinstance(expected, float):
        assert math.isclose(expected, float(actual), abs_tol=tol)
    else:
        assert expected == actual


def no_repro_workers_alive():
    return not any(
        child.name.startswith("repro-shard")
        for child in multiprocessing.active_children()
        if child.is_alive()
    )


def kill_worker(pool, shard_index):
    """Hard-kill one worker through the deterministic exit-now hook."""
    with pytest.raises(WorkerCrashError):
        pool._request(shard_index, "exit-now")


def force_cold_reads(sharded):
    """Drop every warm artifact so the next read must consult the workers.

    The coordinator memoizes merged artifacts per version vector and the
    pool caches per-shard partials per version: with both warm, a read
    after a worker kill would be answered without any worker round-trip
    and the failure path under test would never engage.
    """
    sharded.process_pool().forget_cached_summaries()
    sharded.coordinator().invalidate()


# ---------------------------------------------------------------------------
# Supervisor policy (pure, no processes)
# ---------------------------------------------------------------------------
class TestWorkerSupervisor:
    def test_budget_and_recovery(self):
        supervisor = WorkerSupervisor(
            SupervisorPolicy(max_restarts=2, backoff_base=0.0, jitter=0.0)
        )
        assert supervisor.admit_restart(0) == 0.0
        assert supervisor.admit_restart(0) == 0.0
        assert supervisor.admit_restart(0) is None  # budget spent
        assert supervisor.restarts(0) == 2
        supervisor.record_recovery(0)
        assert supervisor.admit_restart(0) == 0.0  # loop reset
        assert supervisor.restarts() == 3

    def test_budget_is_per_shard(self):
        supervisor = WorkerSupervisor(
            SupervisorPolicy(max_restarts=1, backoff_base=0.0, jitter=0.0)
        )
        assert supervisor.admit_restart(0) is not None
        assert supervisor.admit_restart(0) is None
        assert supervisor.admit_restart(1) is not None

    def test_backoff_grows_and_caps(self):
        supervisor = WorkerSupervisor(
            SupervisorPolicy(
                max_restarts=10,
                backoff_base=0.1,
                backoff_factor=2.0,
                backoff_cap=0.3,
                jitter=0.0,
            )
        )
        waits = [supervisor.admit_restart(3) for _ in range(4)]
        assert waits == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.3),
            pytest.approx(0.3),  # capped
        ]

    def test_seeded_jitter_is_deterministic(self):
        policy = SupervisorPolicy(
            max_restarts=5, backoff_base=0.05, jitter=0.5, seed=99
        )
        first = [WorkerSupervisor(policy).admit_restart(0)]
        second = [WorkerSupervisor(policy).admit_restart(0)]
        assert first == second
        assert first[0] >= 0.05


# ---------------------------------------------------------------------------
# Fault schedules (pure, no processes)
# ---------------------------------------------------------------------------
class TestFaultSchedule:
    def test_seeded_is_deterministic(self):
        build = lambda: FaultSchedule.seeded(
            5, horizon=80, kills=2, stalls=2, delays=1, drops=2, shard_count=4
        )
        assert build() == build()
        assert build().signature() == build().signature()
        other = FaultSchedule.seeded(6, horizon=80, kills=2, stalls=2)
        assert other.signature() != build().signature()

    def test_periodic_and_merged(self):
        kills = FaultSchedule.periodic("kill", start=10, every=20, count=3)
        assert [event.at for event in kills.events] == [10, 30, 50]
        stalls = FaultSchedule.periodic(
            "stall", start=15, every=20, count=2, seconds=0.5
        )
        merged = kills.merged(stalls)
        assert len(merged) == 5
        assert [event.at for event in merged.events] == [10, 15, 30, 35, 50]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FaultEvent(0, "kill")
        with pytest.raises(WorkloadError):
            FaultEvent(1, "meteor")
        with pytest.raises(WorkloadError):
            FaultEvent(1, "stall", seconds=-1.0)
        with pytest.raises(WorkloadError):
            FaultSchedule.seeded(1, horizon=2, kills=2, stalls=2)

    def test_injector_fires_at_ordinals_once(self):
        schedule = FaultSchedule(
            [FaultEvent(2, "drop"), FaultEvent(4, "delay", seconds=0.0)]
        )
        injector = FaultInjector(schedule)
        fired = [injector.next_event(0, "ping") for _ in range(6)]
        kinds = [event.kind if event else None for event in fired]
        assert kinds == [None, "drop", None, "delay", None, None]
        assert injector.pending_count == 0
        assert [f.ordinal for f in injector.fired] == [2, 4]
        assert injector.fired_of_kind("drop")[0].op == "ping"

    def test_shard_pinned_event_stays_armed(self):
        injector = FaultInjector(FaultSchedule([FaultEvent(1, "drop", shard=2)]))
        assert injector.next_event(0, "ping") is None  # due, wrong shard
        assert injector.next_event(1, "ping") is None
        event = injector.next_event(2, "ping")  # armed until shard 2 shows
        assert event is not None and event.kind == "drop"


# ---------------------------------------------------------------------------
# Supervised pool: restart, heartbeat, staged replay, close escalation
# ---------------------------------------------------------------------------
class TestSupervisedPool:
    def test_kill_then_self_heal_with_parity(self):
        database = small_tuple_independent(11, count=12)
        unsharded = QuerySession(database.tree)
        with ShardedDatabase(
            database,
            2,
            executor="processes",
            executor_options={"supervisor": FAST_SUPERVISION},
        ) as sharded:
            pool = sharded.process_pool()
            coordinator = sharded.coordinator()
            before = coordinator.mean_topk_symmetric_difference(K)
            victim = pool.shard_indices()[0]
            kill_worker(pool, victim)
            # The next summary fetch hits the dead worker, restarts it and
            # retries transparently; the merged answer stays exact.
            force_cold_reads(sharded)
            after = coordinator.mean_topk_symmetric_difference(K)
            reference = unsharded.mean_topk_symmetric_difference(K)
            assert after[0] == before[0] == reference[0]
            assert math.isclose(after[1], reference[1], abs_tol=TOLERANCE)
            assert pool.restart_count() == 1
            assert pool.stats().restarts == 1
            assert pool.supervisor.restarts(victim) == 1
        assert no_repro_workers_alive()

    def test_restart_budget_exhaustion_surfaces_crash(self):
        database = small_tuple_independent(12, count=10)
        with ShardedDatabase(
            database,
            2,
            executor="processes",
            executor_options={
                "supervisor": SupervisorPolicy(
                    max_restarts=0, backoff_base=0.0, jitter=0.0
                )
            },
        ) as sharded:
            pool = sharded.process_pool()
            victim = pool.shard_indices()[0]
            kill_worker(pool, victim)
            with pytest.raises(WorkerCrashError):
                pool._request(victim, "ping")
            assert pool.restart_count() == 0

    def test_unsupervised_pool_keeps_legacy_crash_behaviour(self):
        database = small_tuple_independent(13, count=10)
        with ShardedDatabase(
            database,
            2,
            executor="processes",
            executor_options={"supervise": False},
        ) as sharded:
            pool = sharded.process_pool()
            assert not pool.supervised
            victim = pool.shard_indices()[0]
            kill_worker(pool, victim)
            with pytest.raises(WorkerCrashError):
                pool._request(victim, "ping")
            assert pool.restart_worker(victim) is False

    def test_check_workers_heartbeat_restarts_dead(self):
        database = small_tuple_independent(14, count=10)
        with ShardedDatabase(
            database,
            2,
            executor="processes",
            executor_options={"supervisor": FAST_SUPERVISION},
        ) as sharded:
            pool = sharded.process_pool()
            assert pool.check_workers() == []
            victim = pool.shard_indices()[-1]
            handle = pool._workers[victim]
            handle.process.terminate()
            handle.process.join(5.0)
            assert pool.check_workers() == [victim]
            # Restarted in the same sweep: alive again, answers requests.
            assert pool.check_workers() == []
            assert pool._request(victim, "ping") == "pong"
            assert pool.restart_count() == 1

    def test_staged_rebuild_replayed_through_commit_crash(self):
        database = small_tuple_independent(15, count=12)
        with ShardedDatabase(
            database,
            2,
            executor="processes",
            executor_options={"supervisor": FAST_SUPERVISION},
        ) as sharded:
            pool = sharded.process_pool()
            coordinator = sharded.coordinator()
            reference = coordinator.mean_topk_footrule(K)
            victim = pool.shard_indices()[0]
            units = list(sharded.shards()[victim].units)
            ticket = pool.prepare_replace(victim, units)
            assert pool.staged_count(victim) == 1
            # The crash takes the staged rebuild down with the worker; the
            # supervised commit replays it on the respawned worker.
            kill_worker(pool, victim)
            pool.commit_replace(victim, ticket)
            assert pool.restart_count() >= 1
            assert pool.staged_count(victim) == 0
            force_cold_reads(sharded)
            replayed = coordinator.mean_topk_footrule(K)
            assert replayed[0] == reference[0]
            assert math.isclose(replayed[1], reference[1], abs_tol=TOLERANCE)

    def test_close_escalates_past_wedged_worker(self):
        database = small_tuple_independent(16, count=10)
        sharded = ShardedDatabase(database, 2, executor="processes")
        pool = sharded.process_pool()
        handles = list(pool._workers.values())
        wedged = handles[0]
        # Wedge the worker without consuming the reply: it sleeps through
        # the cooperative shutdown send and must be terminated instead.
        with wedged.lock:
            wedged.connection.send(("stall", 30.0))
        started = time.monotonic()
        pool.close(join_timeout=0.5)
        elapsed = time.monotonic() - started
        assert elapsed < 10.0
        for handle in handles:
            assert not handle.process.is_alive()
        assert no_repro_workers_alive()


# ---------------------------------------------------------------------------
# Executor: deadlines, retries, breaker, degradation, update queue
# ---------------------------------------------------------------------------
def run(coroutine):
    return asyncio.run(coroutine)


class TestDeadlines:
    def test_stalled_shard_misses_deadline(self):
        database = small_tuple_independent(21, count=12)
        injector = FaultInjector(
            FaultSchedule([FaultEvent(1, "stall", seconds=1.0)])
        )

        async def scenario():
            with ShardedDatabase(
                database,
                2,
                executor="processes",
                executor_options={
                    "supervisor": FAST_SUPERVISION,
                    "fault_injector": injector,
                },
            ) as sharded:
                async with ServingExecutor(sharded) as executor:
                    with pytest.raises(DeadlineExceededError):
                        await executor.execute(
                            QueryRequest.make("top_k_membership", K),
                            deadline_ms=100.0,
                        )
                    assert executor.metrics().deadline_exceeded == 1
                    # The stall passes; the same query then answers fresh.
                    answer = await executor.execute(
                        QueryRequest.make("top_k_membership", K)
                    )
                    assert not answer.stale and not answer.degraded
            assert injector.fired_of_kind("stall")

        run(scenario())

    def test_zero_or_negative_deadline_disables(self):
        database = small_tuple_independent(22, count=10)

        async def scenario():
            with ShardedDatabase(database, 2, executor="processes") as sharded:
                async with ServingExecutor(
                    sharded, deadline_ms=-5.0
                ) as executor:
                    answer = await executor.execute(
                        QueryRequest.make("mean_topk_footrule", K)
                    )
                    assert answer.value is not None
                    assert executor.metrics().deadline_exceeded == 0

        run(scenario())


class TestRetries:
    def test_dropped_message_retries_to_fresh_answer(self):
        database = small_tuple_independent(23, count=12)
        unsharded = QuerySession(database.tree)
        injector = FaultInjector(FaultSchedule([FaultEvent(1, "drop")]))

        async def scenario():
            with ShardedDatabase(
                database,
                2,
                executor="processes",
                executor_options={
                    "supervisor": FAST_SUPERVISION,
                    "fault_injector": injector,
                },
            ) as sharded:
                # warm_shards off: the drop must hit the query path itself,
                # not the advisory prefetch.
                async with ServingExecutor(
                    sharded, warm_shards=False, retry_backoff=0.0
                ) as executor:
                    answer = await executor.execute(
                        QueryRequest.make("mean_topk_symmetric_difference", K)
                    )
                    metrics = executor.metrics()
                    assert metrics.retries >= 1
                    assert not answer.stale and not answer.degraded
                    reference = unsharded.mean_topk_symmetric_difference(K)
                    assert answer.value[0] == reference[0]
                    assert math.isclose(
                        answer.value[1], reference[1], abs_tol=TOLERANCE
                    )

        run(scenario())


class TestDegradedServing:
    @staticmethod
    def _dead_shard_database(seed):
        return ShardedDatabase(
            small_tuple_independent(seed, count=12),
            2,
            executor="processes",
            executor_options={"supervise": False},
        )

    def test_stale_answer_served_from_cache(self):
        async def scenario():
            with self._dead_shard_database(31) as sharded:
                async with ServingExecutor(
                    sharded,
                    max_retries=0,
                    breaker_threshold=1,
                    staleness_bound_s=60.0,
                ) as executor:
                    fresh = await executor.execute(
                        QueryRequest.make("top_k_membership", K)
                    )
                    assert not fresh.stale
                    pool = sharded.process_pool()
                    victim = pool.shard_indices()[0]
                    kill_worker(pool, victim)
                    force_cold_reads(sharded)
                    stale = await executor.execute(
                        QueryRequest.make("top_k_membership", K)
                    )
                    assert stale.stale and not stale.degraded
                    assert stale.provenance()["stale"] is True
                    assert_value_parity(fresh.value, stale.value)
                    metrics = executor.metrics()
                    assert metrics.stale_served == 1
                    assert metrics.breaker_open >= 1
                    assert victim in executor.open_breakers()

        run(scenario())

    def test_degraded_answer_excludes_dead_shard(self):
        async def scenario():
            with self._dead_shard_database(32) as sharded:
                async with ServingExecutor(
                    sharded,
                    max_retries=0,
                    breaker_threshold=1,
                    staleness_bound_s=0.0,  # never serve stale: force fresh-minus-dead
                ) as executor:
                    await executor.start()
                    pool = sharded.process_pool()
                    victim = pool.shard_indices()[0]
                    kill_worker(pool, victim)
                    force_cold_reads(sharded)
                    degraded = await executor.execute(
                        QueryRequest.make("top_k_membership", K)
                    )
                    assert degraded.degraded and not degraded.stale
                    assert degraded.provenance()["degraded"] is True
                    # The degraded answer is exact over the live shards.
                    live = [
                        shard.session()
                        for shard in sharded.shards()
                        if shard.index != victim and shard.session()
                    ]
                    from repro.sharding import ShardedQuerySession

                    reference = ShardedQuerySession(live).top_k_membership(K)
                    assert_value_parity(reference, degraded.value)
                    dead_keys = {
                        key
                        for key in sharded.keys()
                        if sharded.shard_of(key) == victim
                    }
                    assert dead_keys
                    assert dead_keys.isdisjoint(degraded.value)
                    assert executor.metrics().degraded_served == 1

        run(scenario())

    def test_degraded_reads_disabled_raises_typed(self):
        async def scenario():
            with self._dead_shard_database(33) as sharded:
                async with ServingExecutor(
                    sharded,
                    max_retries=0,
                    breaker_threshold=1,
                    degraded_reads=False,
                ) as executor:
                    await executor.start()
                    pool = sharded.process_pool()
                    kill_worker(pool, pool.shard_indices()[0])
                    force_cold_reads(sharded)
                    with pytest.raises(WorkerCrashError):
                        await executor.execute(
                            QueryRequest.make("mean_topk_footrule", K)
                        )
                    # Breaker now open: the typed refusal is immediate.
                    with pytest.raises(ShardUnavailableError):
                        await executor.execute(
                            QueryRequest.make("mean_topk_footrule", K)
                        )

        run(scenario())

    def test_updates_to_dead_shard_queue_bounded(self):
        async def scenario():
            with self._dead_shard_database(34) as sharded:
                async with ServingExecutor(
                    sharded,
                    max_retries=0,
                    breaker_threshold=1,
                    update_queue_limit=1,
                ) as executor:
                    await executor.start()
                    pool = sharded.process_pool()
                    victim = pool.shard_indices()[0]
                    kill_worker(pool, victim)
                    keys = [
                        key
                        for key in sharded.keys()
                        if sharded.shard_of(key) == victim
                    ]
                    assert keys
                    await executor.update(keys[0], probability=0.4)
                    assert executor.queued_update_count() == 1
                    assert executor.metrics().updates_queued == 1
                    with pytest.raises(ShardUnavailableError):
                        await executor.update(keys[0], probability=0.6)

        run(scenario())

    def test_queued_updates_drain_on_recovery(self):
        database = small_tuple_independent(35, count=12)

        async def scenario():
            with ShardedDatabase(database, 2, executor="processes") as sharded:
                async with ServingExecutor(
                    sharded, breaker_threshold=1, update_queue_limit=8
                ) as executor:
                    await executor.start()
                    key = sharded.keys()[0]
                    shard_index = sharded.shard_of(key)
                    version_before = sharded.versions()[shard_index]
                    # Trip the breaker by hand: the worker is healthy, so
                    # the queued update demonstrably waits on the breaker,
                    # not on the worker.
                    executor._record_shard_failure(shard_index)
                    await executor.update(key, probability=0.3)
                    assert executor.queued_update_count() == 1
                    assert sharded.versions()[shard_index] == version_before
                    executor._record_shard_success(shard_index)
                    remaining = await executor.flush_updates()
                    assert remaining == 0
                    assert sharded.versions()[shard_index] == version_before + 1
                    assert executor.metrics().updates == 1

        run(scenario())


# ---------------------------------------------------------------------------
# Stop/close with batches in flight and mid-restart
# ---------------------------------------------------------------------------
class TestStopClose:
    def test_stop_with_batch_in_flight(self):
        database = small_tuple_independent(41, count=12)
        injector = FaultInjector(
            FaultSchedule([FaultEvent(1, "stall", seconds=0.3)])
        )

        async def scenario():
            with ShardedDatabase(
                database,
                2,
                executor="processes",
                executor_options={
                    "supervisor": FAST_SUPERVISION,
                    "fault_injector": injector,
                },
            ) as sharded:
                executor = ServingExecutor(sharded)
                await executor.start()
                tasks = [
                    asyncio.ensure_future(
                        executor.execute(QueryRequest.make("top_k_membership", K))
                    )
                    for _ in range(3)
                ]
                await asyncio.sleep(0.05)  # batch underway, stalled
                await executor.stop()
                answers = await asyncio.gather(*tasks)
                for answer in answers:
                    assert answer.value is not None
                metrics = executor.metrics()
                assert metrics.queries + metrics.coalesced == 3
            assert no_repro_workers_alive()

        run(scenario())

    def test_stop_mid_worker_restart(self):
        database = small_tuple_independent(42, count=12)

        async def scenario():
            with ShardedDatabase(
                database,
                2,
                executor="processes",
                executor_options={"supervisor": FAST_SUPERVISION},
            ) as sharded:
                executor = ServingExecutor(sharded, retry_backoff=0.0)
                await executor.start()
                pool = sharded.process_pool()
                victim = pool.shard_indices()[0]
                kill_worker(pool, victim)
                force_cold_reads(sharded)
                # The query self-heals through the restart; stop() right
                # behind it must drain cleanly, not hang.
                task = asyncio.ensure_future(
                    executor.execute(QueryRequest.make("mean_topk_footrule", K))
                )
                await asyncio.sleep(0.01)
                await executor.stop()
                answer = await task
                assert answer.value is not None
                assert executor.metrics().worker_restarts >= 0
            assert no_repro_workers_alive()

        run(scenario())

    def test_close_is_reentrant_and_leaves_no_processes(self):
        database = small_tuple_independent(43, count=10)

        async def scenario():
            with ShardedDatabase(database, 2, executor="processes") as sharded:
                executor = ServingExecutor(sharded)
                await executor.start()
                await executor.execute(QueryRequest.make("top_k_membership", K))
                executor.close()
                executor.close()  # idempotent
                await executor.stop()  # no-op after close
            assert no_repro_workers_alive()

        run(scenario())


# ---------------------------------------------------------------------------
# Metrics snapshots
# ---------------------------------------------------------------------------
class TestMetricsDelta:
    def test_snapshot_subtraction(self):
        metrics = ServingMetrics()
        metrics.count_query("top_k_membership")
        metrics.retries = 2
        metrics.stale_served = 1
        before = metrics.snapshot(ipc=IpcSnapshot(commands=5, restarts=1))
        metrics.count_query("top_k_membership")
        metrics.count_query("mean_topk_footrule")
        metrics.retries = 5
        metrics.deadline_exceeded = 1
        metrics.breaker_open = 2
        metrics.stale_served = 3
        metrics.degraded_served = 1
        metrics.updates_queued = 4
        after = metrics.snapshot(ipc=IpcSnapshot(commands=9, restarts=3))
        delta = after - before
        assert delta.queries == 2
        assert delta.retries == 3
        assert delta.deadline_exceeded == 1
        assert delta.breaker_open == 2
        assert delta.stale_served == 2
        assert delta.degraded_served == 1
        assert delta.updates_queued == 4
        assert delta.worker_restarts == 2
        assert delta.ipc.commands == 4
        assert dict(delta.queries_by_kind) == {
            "top_k_membership": 1,
            "mean_topk_footrule": 1,
        }
        # Gauges come from the newer snapshot, not a meaningless delta.
        assert delta.latency_mean == after.latency_mean

    def test_worker_restarts_mirror_ipc(self):
        metrics = ServingMetrics()
        assert metrics.snapshot().worker_restarts == 0
        snapshot = metrics.snapshot(ipc=IpcSnapshot(restarts=7))
        assert snapshot.worker_restarts == 7


# ---------------------------------------------------------------------------
# Chaos smoke: seeded kills under update-heavy traffic, full accounting
# ---------------------------------------------------------------------------
class TestChaosReplay:
    def test_seeded_chaos_recovers_with_parity(self):
        events = None
        schedule = FaultSchedule.periodic(
            "kill", start=8, every=30, count=2
        ).merged(FaultSchedule([FaultEvent(20, "drop")]))

        def serve(fault_injector):
            database = random_tuple_independent_database(14, rng=61)
            with ShardedDatabase(
                database,
                2,
                executor="processes",
                executor_options={
                    "supervisor": FAST_SUPERVISION,
                    "fault_injector": fault_injector,
                },
            ) as sharded:
                stream = update_heavy_traffic(
                    sharded.keys(), 60, rng=17, query_mix=EXACT_MIX
                )
                nonlocal events
                if events is None:
                    events = stream
                assert [e.kind for e in stream] == [e.kind for e in events]

                async def drive():
                    async with ServingExecutor(
                        sharded, retry_backoff=0.0
                    ) as executor:
                        outcomes = await chaos_replay(
                            executor, stream, concurrency=4
                        )
                        return outcomes, executor.metrics()

                return asyncio.run(drive())

        baseline, _ = serve(None)
        injector = FaultInjector(schedule)
        faulted, metrics = serve(injector)

        base_summary = chaos_summary(baseline)
        fault_summary = chaos_summary(faulted)
        # Every request terminates: answered or typed, never hung.
        assert fault_summary["completed"] == fault_summary["events"]
        assert base_summary["completed"] == base_summary["events"]
        # The kills actually happened and were healed.
        assert injector.fired_of_kind("kill")
        assert metrics.worker_restarts >= 1
        # Supervision healed every update, so both runs hold equal state
        # and the non-degraded answers must agree to 1e-9.
        assert fault_summary["update_failures"] == 0
        assert base_summary["update_failures"] == 0
        compared = 0
        for reference, outcome in zip(baseline, faulted):
            if reference.event.is_update:
                continue
            if reference.fresh and outcome.fresh:
                assert_value_parity(
                    reference.answer.value, outcome.answer.value
                )
                compared += 1
        assert compared > 0
        assert no_repro_workers_alive()
