"""Tests for the unified Top-k answer evaluation utilities."""

from __future__ import annotations

import math
import random

import pytest

from repro.consensus.evaluation import (
    TOPK_METRICS,
    AnswerEvaluation,
    compare_topk_answers,
    evaluate_topk_answer,
)
from repro.consensus.topk.symmetric_difference import (
    mean_topk_symmetric_difference,
)
from repro.exceptions import ConsensusError
from tests.conftest import small_bid, small_tuple_independent


class TestEvaluateTopKAnswer:
    @pytest.mark.parametrize("seed,k", [(1, 2), (2, 3), (3, 2)])
    def test_closed_form_matches_enumeration(self, seed, k):
        tree = small_bid(seed, blocks=4, exhaustive=True).tree
        answer = tuple(tree.keys()[:k])
        closed = evaluate_topk_answer(tree, answer, k, method="closed_form")
        enumerated = evaluate_topk_answer(tree, answer, k, method="enumerate")
        for metric in ("symmetric_difference", "intersection", "footrule"):
            assert math.isclose(
                closed.distance(metric),
                enumerated.distance(metric),
                abs_tol=1e-9,
            )

    def test_sampling_approximates_closed_form(self):
        tree = small_tuple_independent(5, count=6).tree
        answer = tuple(tree.keys()[:3])
        closed = evaluate_topk_answer(tree, answer, 3, method="closed_form")
        sampled = evaluate_topk_answer(
            tree, answer, 3, method="sample", samples=4000,
            rng=random.Random(0),
        )
        assert abs(
            closed.distance("symmetric_difference")
            - sampled.distance("symmetric_difference")
        ) < 0.05

    def test_kendall_requires_non_closed_form(self):
        tree = small_tuple_independent(1, count=4).tree
        answer = tuple(tree.keys()[:2])
        with pytest.raises(ConsensusError):
            evaluate_topk_answer(tree, answer, 2, metrics=("kendall",))
        result = evaluate_topk_answer(
            tree, answer, 2, metrics=("kendall",), method="enumerate"
        )
        assert result.distance("kendall") >= 0.0

    def test_unknown_metric_and_method_rejected(self):
        tree = small_tuple_independent(1, count=4).tree
        answer = tuple(tree.keys()[:2])
        with pytest.raises(ConsensusError):
            evaluate_topk_answer(tree, answer, 2, metrics=("bogus",))
        with pytest.raises(ConsensusError):
            evaluate_topk_answer(tree, answer, 2, method="bogus")
        result = evaluate_topk_answer(tree, answer, 2)
        with pytest.raises(ConsensusError):
            result.distance("not_evaluated")

    def test_metric_registry_complete(self):
        assert set(TOPK_METRICS) == {
            "symmetric_difference", "intersection", "footrule", "kendall",
        }


class TestCompareTopKAnswers:
    def test_consensus_wins_its_metric(self):
        tree = small_bid(7, blocks=5, exhaustive=True).tree
        k = 2
        consensus_answer, _ = mean_topk_symmetric_difference(tree, k)
        other_answer = tuple(reversed(tree.keys()[-k:]))
        results = compare_topk_answers(
            tree,
            {"consensus": consensus_answer, "other": other_answer},
            k,
        )
        assert isinstance(results["consensus"], AnswerEvaluation)
        assert (
            results["consensus"].distance("symmetric_difference")
            <= results["other"].distance("symmetric_difference") + 1e-9
        )
