"""Tests for the generating-function framework (Theorem 1, Examples 1-3).

Includes the exact reproduction of Figure 1 of the paper (experiment F1 in
DESIGN.md).
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.andxor.builders import (
    bid_tree,
    figure1_bid_example,
    figure1_correlated_example,
)
from repro.andxor.enumeration import enumerate_worlds
from repro.andxor.generating import (
    bivariate_generating_function,
    generating_function,
    univariate_generating_function,
)
from repro.andxor.statistics import (
    size_distribution,
    subset_size_distribution,
)
from repro.exceptions import ModelError
from tests.conftest import small_bid, small_xtuple


class TestFigure1Reproduction:
    """Experiment F1: the worked examples of Figure 1 of the paper."""

    def test_figure1_i_world_size_generating_function(self):
        """Figure 1(i): the size distribution is 0.08 x^2 + 0.44 x^3 + 0.48 x^4."""
        tree = figure1_bid_example()
        polynomial = univariate_generating_function(tree)
        coefficients = list(polynomial.coefficients)
        assert coefficients[0] == pytest.approx(0.0, abs=1e-12)
        assert coefficients[1] == pytest.approx(0.0, abs=1e-12)
        assert coefficients[2] == pytest.approx(0.08)
        assert coefficients[3] == pytest.approx(0.44)
        assert coefficients[4] == pytest.approx(0.48)

    def test_figure1_i_intermediate_factors(self):
        """Figure 1(i) also displays the per-block factors 0.4+0.6x, 0.2+0.8x."""
        tree = bid_tree([("t1", [(8, 0.1), (2, 0.5)])])
        polynomial = univariate_generating_function(tree)
        assert polynomial.coefficient(0) == pytest.approx(0.4)
        assert polynomial.coefficient(1) == pytest.approx(0.6)

    def test_figure1_iii_rank_generating_function(self):
        """Figure 1(iii): marking (t3,6) with y and higher-scored leaves with x
        yields 0.3 y + 0.3 x^2 + 0.4 x, and the y coefficient is
        Pr(r(t3 via value 6) = 1) = 0.3."""
        tree = figure1_correlated_example()

        def variable_of(leaf):
            alternative = leaf.alternative
            if alternative.key == "t3" and alternative.value == 6:
                return "y"
            if alternative.effective_score() > 6:
                return "x"
            return None

        polynomial = bivariate_generating_function(tree, variable_of)
        assert polynomial.coefficient(0, 1) == pytest.approx(0.3)
        assert polynomial.coefficient(1, 0) == pytest.approx(0.4)
        assert polynomial.coefficient(2, 0) == pytest.approx(0.3)
        assert polynomial.sum_of_coefficients() == pytest.approx(1.0)

    def test_figure1_ii_possible_worlds(self):
        """Figure 1(ii): the tree has exactly the three listed worlds."""
        distribution = enumerate_worlds(figure1_correlated_example())
        sizes = sorted(len(world) for world in distribution.worlds)
        assert sizes == [3, 3, 3]
        assert sorted(distribution.probabilities) == pytest.approx([0.3, 0.3, 0.4])


class TestTheorem1:
    """Coefficients of the generating function equal world probabilities."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_example1_size_distribution_matches_enumeration(self, seed):
        database = small_bid(seed, blocks=4)
        tree = database.tree
        distribution = enumerate_worlds(tree)
        sizes = size_distribution(tree)
        for count, probability in enumerate(sizes):
            expected = distribution.probability_that(lambda w: len(w) == count)
            assert math.isclose(probability, expected, abs_tol=1e-9)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_example2_subset_size_distribution(self, seed):
        database = small_xtuple(seed, groups=3)
        tree = database.tree
        marked_keys = set(list(tree.keys())[::2])
        distribution = enumerate_worlds(tree)
        sizes = subset_size_distribution(
            tree, lambda leaf: leaf.alternative.key in marked_keys
        )
        for count, probability in enumerate(sizes):
            expected = distribution.probability_that(
                lambda w: sum(1 for a in w if a.key in marked_keys) == count
            )
            assert math.isclose(probability, expected, abs_tol=1e-9)

    def test_total_mass_is_one(self):
        for seed in range(5):
            tree = small_bid(seed, blocks=5).tree
            assert univariate_generating_function(
                tree
            ).sum_of_coefficients() == pytest.approx(1.0)

    def test_multivariate_generating_function_joint_counts(self):
        tree = small_bid(3, blocks=4).tree
        keys = tree.keys()
        group_a = set(keys[:2])
        group_b = set(keys[2:])

        def variable_of(leaf):
            if leaf.alternative.key in group_a:
                return "x"
            if leaf.alternative.key in group_b:
                return "y"
            return None

        polynomial = generating_function(tree, variable_of, ("x", "y"))
        distribution = enumerate_worlds(tree)
        for i in range(len(group_a) + 1):
            for j in range(len(group_b) + 1):
                expected = distribution.probability_that(
                    lambda w: (
                        sum(1 for a in w if a.key in group_a) == i
                        and sum(1 for a in w if a.key in group_b) == j
                    )
                )
                assert math.isclose(
                    polynomial.coefficient((i, j)), expected, abs_tol=1e-9
                )

    def test_truncated_generating_function_prefix(self):
        tree = small_bid(7, blocks=6).tree
        full = univariate_generating_function(tree)
        truncated = univariate_generating_function(tree, max_degree=2)
        for exponent in range(3):
            assert math.isclose(
                truncated.coefficient(exponent), full.coefficient(exponent)
            )

    def test_bivariate_rejects_unknown_variable(self):
        tree = small_bid(1, blocks=2).tree
        with pytest.raises(ModelError):
            bivariate_generating_function(tree, lambda leaf: "z")

    def test_univariate_default_marks_all(self):
        tree = small_bid(2, blocks=3).tree
        assert univariate_generating_function(tree).degree == len(
            tree.keys()
        )
