"""Experiment E11: end-to-end scalability of the consensus Top-k stack.

Runs the full pipeline -- rank statistics, mean/median d_Delta answers, the
intersection and footrule assignment answers and the Kendall pivot answer --
on Zipf-scored tuple-independent databases of increasing size, reporting the
wall-clock time of each stage.  The paper claims polynomial time for every
stage; this experiment shows the constants are small enough for interactive
use on databases with thousands of tuples.
"""

from __future__ import annotations

import time

from _harness import report
from repro.andxor.rank_probabilities import RankStatistics
from repro.session import QuerySession
from repro.consensus.topk.footrule import mean_topk_footrule
from repro.consensus.topk.intersection import approximate_topk_intersection
from repro.consensus.topk.kendall import approximate_topk_kendall
from repro.consensus.topk.symmetric_difference import (
    mean_topk_symmetric_difference,
    median_topk_symmetric_difference,
)
from repro.workloads.generators import random_tuple_independent_database

K = 10


def test_e11_end_to_end_scaling(benchmark):
    rows = []
    for n in (500, 1000, 2000, 4000):
        database = random_tuple_independent_database(
            n, rng=n, score_distribution="zipf"
        )
        statistics = RankStatistics(database.tree)
        timings = {}

        start = time.perf_counter()
        statistics.top_k_membership_probabilities(K)
        timings["rank statistics"] = time.perf_counter() - start

        start = time.perf_counter()
        mean_topk_symmetric_difference(statistics, K)
        timings["mean d_Delta"] = time.perf_counter() - start

        start = time.perf_counter()
        median_topk_symmetric_difference(statistics, K)
        timings["median d_Delta"] = time.perf_counter() - start

        start = time.perf_counter()
        approximate_topk_intersection(statistics, K)
        timings["Upsilon_H d_I"] = time.perf_counter() - start

        start = time.perf_counter()
        mean_topk_footrule(statistics, K)
        timings["footrule"] = time.perf_counter() - start

        start = time.perf_counter()
        approximate_topk_kendall(statistics, K)
        timings["Kendall pivot"] = time.perf_counter() - start

        rows.append(
            (
                n,
                timings["rank statistics"],
                timings["mean d_Delta"],
                timings["median d_Delta"],
                timings["Upsilon_H d_I"],
                timings["footrule"],
                timings["Kendall pivot"],
            )
        )
    report(
        "E11",
        f"End-to-end consensus Top-{K} runtime on Zipf-scored "
        "tuple-independent databases (seconds)",
        ("tuples", "rank stats", "mean d_Delta", "median d_Delta",
         "Y_H d_I", "footrule", "Kendall pivot"),
        rows,
        notes=(
            "Tuple-independent databases use the O(n log k) median sweep; "
            "the generic Theorem-4 DP (needed for attribute-level "
            "uncertainty) is measured separately in experiment E4b."
        ),
    )

    database = random_tuple_independent_database(1000, rng=1, score_distribution="zipf")

    def pipeline():
        statistics = RankStatistics(database.tree)
        mean_topk_symmetric_difference(statistics, K)
        approximate_topk_intersection(statistics, K)
        return mean_topk_footrule(statistics, K)

    benchmark.pedantic(pipeline, rounds=3, iterations=1)


def test_e11_session_cold_vs_warm(benchmark):
    """Cold-vs-warm QuerySession timings for the full consensus suite.

    A cold session computes the shared artifacts (rank matrix, membership,
    preference matrix, Υ tables); a warm session answers the same battery of
    queries from its cache.  The JSON results record the active backend, so
    BENCH trajectories can tell NumPy runs from pure-Python runs.
    """
    rows = []
    for n in (500, 1000, 2000, 4000):
        database = random_tuple_independent_database(
            n, rng=n, score_distribution="zipf"
        )

        def run_suite(session):
            session.mean_topk_symmetric_difference(K)
            session.median_topk_symmetric_difference(K)
            session.approximate_topk_intersection(K)
            session.mean_topk_footrule(K)
            session.approximate_topk_kendall(K)

        session = QuerySession(database.tree)
        start = time.perf_counter()
        run_suite(session)
        cold = time.perf_counter() - start

        start = time.perf_counter()
        run_suite(session)
        warm = time.perf_counter() - start

        info = session.cache_info()
        rows.append(
            (
                n,
                cold,
                warm,
                cold / warm if warm > 0 else float("inf"),
                info["hits"],
                info["misses"],
            )
        )
    report(
        "E11b",
        f"QuerySession cold vs warm consensus Top-{K} suite (seconds)",
        ("tuples", "cold (s)", "warm (s)", "speedup", "cache hits",
         "cache misses"),
        rows,
        notes=(
            "Cold sessions compute the shared rank/preference matrices once; "
            "warm sessions serve the whole query battery from the session "
            "cache (memoized artifacts and memoized query results)."
        ),
    )

    database = random_tuple_independent_database(1000, rng=1, score_distribution="zipf")
    warm_session = QuerySession(database.tree)
    warm_session.mean_topk_footrule(K)

    def warm_pipeline():
        warm_session.mean_topk_symmetric_difference(K)
        warm_session.approximate_topk_intersection(K)
        return warm_session.mean_topk_footrule(K)

    benchmark.pedantic(warm_pipeline, rounds=3, iterations=1)
