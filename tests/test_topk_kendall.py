"""Tests for Top-k consensus under the Kendall tau distance (Section 5.5)."""

from __future__ import annotations

import math
import random

import pytest

from repro.consensus.topk.kendall import (
    approximate_topk_kendall,
    brute_force_mean_topk_kendall,
    expected_topk_kendall_distance,
    footrule_topk_for_kendall,
)
from repro.exceptions import ConsensusError, EnumerationLimitError
from tests.conftest import small_bid, small_tuple_independent


class TestExpectedDistance:
    def test_enumerate_and_sample_agree(self):
        tree = small_bid(1, blocks=4, exhaustive=True).tree
        k = 2
        answer = tuple(tree.keys()[:k])
        exact = expected_topk_kendall_distance(tree, answer, k, method="enumerate")
        estimate = expected_topk_kendall_distance(
            tree, answer, k, method="sample", samples=4000,
            rng=random.Random(0),
        )
        assert abs(exact - estimate) < 0.15

    def test_unknown_method_rejected(self):
        tree = small_bid(1, blocks=3).tree
        with pytest.raises(ConsensusError):
            expected_topk_kendall_distance(tree, tree.keys()[:1], 1, method="bogus")


class TestApproximations:
    @pytest.mark.parametrize("seed,k", [(1, 2), (2, 2), (3, 2), (4, 2)])
    def test_footrule_route_within_factor_two(self, seed, k):
        """d_F-optimal answers 2-approximate the Kendall optimum (and in
        practice usually match it on small instances)."""
        tree = small_bid(seed, blocks=4, exhaustive=True).tree
        optimal_answer, optimal_value = brute_force_mean_topk_kendall(tree, k)
        footrule_answer = footrule_topk_for_kendall(tree, k)
        footrule_value = expected_topk_kendall_distance(tree, footrule_answer, k)
        if optimal_value < 1e-12:
            assert footrule_value < 1e-9
        else:
            assert footrule_value <= 2.0 * optimal_value + 1e-9

    @pytest.mark.parametrize("seed,k", [(1, 2), (2, 2), (3, 2), (5, 3)])
    def test_pivot_route_close_to_optimal(self, seed, k):
        """The pivot aggregation on Pr(r(ti) < r(tj)) stays within the
        constant-factor regime the paper targets (we check a factor of 2 on
        these small instances, and 3/2 empirically in the benchmarks)."""
        tree = small_bid(seed, blocks=4, exhaustive=True).tree
        optimal_answer, optimal_value = brute_force_mean_topk_kendall(tree, k)
        pivot_answer = approximate_topk_kendall(tree, k)
        pivot_value = expected_topk_kendall_distance(tree, pivot_answer, k)
        assert len(set(pivot_answer)) == k
        if optimal_value < 1e-12:
            assert pivot_value < 1e-9
        else:
            assert pivot_value <= 2.0 * optimal_value + 1e-9

    def test_pivot_with_rng_and_pool(self):
        tree = small_tuple_independent(3, count=6).tree
        answer = approximate_topk_kendall(
            tree, 3, candidate_pool_size=5, rng=random.Random(1)
        )
        assert len(answer) == 3

    def test_certain_database_recovers_true_ranking(self):
        from repro.models.bid import BlockIndependentDatabase

        database = BlockIndependentDatabase(
            {"a": [(40, 1.0)], "b": [(30, 1.0)], "c": [(20, 1.0)]}
        )
        assert approximate_topk_kendall(database.tree, 2) == ("a", "b")
        assert footrule_topk_for_kendall(database.tree, 2) == ("a", "b")

    def test_bruteforce_limits(self):
        tree = small_tuple_independent(1, count=6).tree
        with pytest.raises(EnumerationLimitError):
            brute_force_mean_topk_kendall(tree, 5, candidate_limit=10)
