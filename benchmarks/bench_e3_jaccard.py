"""Experiment E3: consensus worlds under the Jaccard distance (Lemmas 1-2).

Validates the prefix-scan mean world for tuple-independent databases and the
BID median world against brute force, and measures the cost of one Lemma-1
expected-distance evaluation as the database grows.
"""

from __future__ import annotations

import math
import time

from _harness import report
from repro.andxor.enumeration import enumerate_worlds
from repro.consensus.jaccard import (
    expected_jaccard_distance_to_world,
    mean_world_jaccard_tuple_independent,
    median_world_jaccard_bid,
)
from repro.core.consensus_bruteforce import (
    brute_force_mean_world_jaccard,
    brute_force_median_world,
)
from repro.core.distances import jaccard_distance
from repro.workloads.generators import (
    random_bid_database,
    random_tuple_independent_database,
)


def test_e3_mean_world_optimality(benchmark):
    rows = []
    for seed in range(5):
        database = random_tuple_independent_database(6, rng=seed)
        tree = database.tree
        distribution = enumerate_worlds(tree)
        answer, value = mean_world_jaccard_tuple_independent(tree)
        _, oracle = brute_force_mean_world_jaccard(distribution)
        rows.append((seed, len(answer), value, oracle))
        assert math.isclose(value, oracle, abs_tol=1e-9)
    report(
        "E3a",
        "Jaccard mean world (Lemma 2 prefix scan) vs brute force",
        ("seed", "answer size", "prefix scan", "oracle"),
        rows,
    )
    sample = random_tuple_independent_database(6, rng=0)
    benchmark(lambda: mean_world_jaccard_tuple_independent(sample.tree))


def test_e3_bid_median_world(benchmark):
    rows = []
    for seed in range(5):
        database = random_bid_database(5, rng=seed, max_alternatives=2)
        tree = database.tree
        distribution = enumerate_worlds(tree)
        answer, value = median_world_jaccard_bid(tree)
        _, oracle = brute_force_median_world(
            distribution, distance=jaccard_distance
        )
        rows.append((seed, len(answer), value, oracle, value / oracle if oracle else 1.0))
        assert value >= oracle - 1e-9
    report(
        "E3b",
        "Jaccard median world for BID (best-alternative prefix scan) vs brute force",
        ("seed", "answer size", "prefix scan", "oracle", "ratio"),
        rows,
    )
    sample = random_bid_database(5, rng=0, max_alternatives=2)
    benchmark(lambda: median_world_jaccard_bid(sample.tree))


def test_e3_lemma1_evaluation_cost(benchmark):
    rows = []
    for n in (10, 20, 40, 60):
        database = random_tuple_independent_database(n, rng=n)
        tree = database.tree
        candidate = frozenset(tree.alternatives()[: n // 2])
        start = time.perf_counter()
        expected_jaccard_distance_to_world(tree, candidate)
        elapsed = time.perf_counter() - start
        rows.append((n, elapsed))
    report(
        "E3c",
        "Cost of one Lemma-1 expected Jaccard distance evaluation",
        ("tuples", "seconds"),
        rows,
        notes="Polynomial (cubic) growth from the untruncated bivariate "
              "generating function.",
    )

    database = random_tuple_independent_database(40, rng=1)
    tree = database.tree
    candidate = frozenset(tree.alternatives()[:20])
    benchmark(lambda: expected_jaccard_distance_to_world(tree, candidate))
