"""Dense univariate polynomials.

Coefficients are stored as a list indexed by exponent.  The class is an
immutable value type: arithmetic operations return new polynomials.

The main consumer is :mod:`repro.andxor.generating`, which builds generating
functions whose coefficient of ``x**i`` is the probability that a possible
world satisfies a counting condition (Theorem 1 of the paper).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.engine import get_backend

Number = Union[int, float]


def _trim(coefficients: List[Number]) -> List[Number]:
    """Drop trailing zero coefficients (but keep at least one entry)."""
    end = len(coefficients)
    while end > 1 and coefficients[end - 1] == 0:
        end -= 1
    return coefficients[:end]


class UnivariatePolynomial:
    """A dense univariate polynomial ``c0 + c1*x + c2*x**2 + ...``.

    Parameters
    ----------
    coefficients:
        Iterable of coefficients, index ``i`` holding the coefficient of
        ``x**i``.  Trailing zeros are trimmed.
    max_degree:
        Optional truncation degree.  When set, every operation discards terms
        of degree strictly greater than ``max_degree``.  Truncation is what
        makes Top-k computations run in time polynomial in ``k`` rather than
        in the total number of tuples.
    """

    __slots__ = ("_coefficients", "_max_degree")

    def __init__(
        self,
        coefficients: Iterable[Number] = (0,),
        max_degree: int | None = None,
    ) -> None:
        coeffs = list(coefficients)
        if not coeffs:
            coeffs = [0]
        if max_degree is not None:
            if max_degree < 0:
                raise ValueError("max_degree must be non-negative")
            coeffs = coeffs[: max_degree + 1]
        self._coefficients = _trim(coeffs)
        self._max_degree = max_degree

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, max_degree: int | None = None) -> "UnivariatePolynomial":
        """The zero polynomial."""
        return cls([0], max_degree=max_degree)

    @classmethod
    def one(cls, max_degree: int | None = None) -> "UnivariatePolynomial":
        """The constant polynomial 1."""
        return cls([1], max_degree=max_degree)

    @classmethod
    def constant(
        cls, value: Number, max_degree: int | None = None
    ) -> "UnivariatePolynomial":
        """A constant polynomial."""
        return cls([value], max_degree=max_degree)

    @classmethod
    def variable(cls, max_degree: int | None = None) -> "UnivariatePolynomial":
        """The polynomial ``x``."""
        return cls([0, 1], max_degree=max_degree)

    @classmethod
    def monomial(
        cls, coefficient: Number, exponent: int, max_degree: int | None = None
    ) -> "UnivariatePolynomial":
        """The polynomial ``coefficient * x**exponent``."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        coeffs = [0] * exponent + [coefficient]
        return cls(coeffs, max_degree=max_degree)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def coefficients(self) -> Sequence[Number]:
        """The dense coefficient list (read-only view)."""
        return tuple(self._coefficients)

    @property
    def max_degree(self) -> int | None:
        """The truncation degree, or ``None`` if untruncated."""
        return self._max_degree

    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for the zero polynomial)."""
        return len(self._coefficients) - 1

    def coefficient(self, exponent: int) -> Number:
        """Return the coefficient of ``x**exponent`` (0 if absent)."""
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        if exponent >= len(self._coefficients):
            return 0
        return self._coefficients[exponent]

    def is_zero(self) -> bool:
        """Return True when all coefficients are zero."""
        return all(c == 0 for c in self._coefficients)

    def evaluate(self, x: Number) -> Number:
        """Evaluate the polynomial at ``x`` using Horner's method."""
        result: Number = 0
        for coeff in reversed(self._coefficients):
            result = result * x + coeff
        return result

    def sum_of_coefficients(self) -> Number:
        """Return the sum of all coefficients (i.e. the value at ``x=1``)."""
        return sum(self._coefficients)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _result_max_degree(self, other: "UnivariatePolynomial") -> int | None:
        if self._max_degree is None:
            return other._max_degree
        if other._max_degree is None:
            return self._max_degree
        return min(self._max_degree, other._max_degree)

    def __add__(self, other: object) -> "UnivariatePolynomial":
        if isinstance(other, (int, float)):
            other = UnivariatePolynomial.constant(other)
        if not isinstance(other, UnivariatePolynomial):
            return NotImplemented
        n = max(len(self._coefficients), len(other._coefficients))
        coeffs = [
            self.coefficient(i) + other.coefficient(i) for i in range(n)
        ]
        return UnivariatePolynomial(
            coeffs, max_degree=self._result_max_degree(other)
        )

    __radd__ = __add__

    def __sub__(self, other: object) -> "UnivariatePolynomial":
        if isinstance(other, (int, float)):
            other = UnivariatePolynomial.constant(other)
        if not isinstance(other, UnivariatePolynomial):
            return NotImplemented
        n = max(len(self._coefficients), len(other._coefficients))
        coeffs = [
            self.coefficient(i) - other.coefficient(i) for i in range(n)
        ]
        return UnivariatePolynomial(
            coeffs, max_degree=self._result_max_degree(other)
        )

    def __mul__(self, other: object) -> "UnivariatePolynomial":
        if isinstance(other, (int, float)):
            coeffs = [c * other for c in self._coefficients]
            return UnivariatePolynomial(coeffs, max_degree=self._max_degree)
        if not isinstance(other, UnivariatePolynomial):
            return NotImplemented
        max_degree = self._result_max_degree(other)
        out_len = len(self._coefficients) + len(other._coefficients) - 1
        if max_degree is not None:
            out_len = min(out_len, max_degree + 1)
        result = get_backend().convolve(
            self._coefficients, other._coefficients, out_len
        )
        return UnivariatePolynomial(result, max_degree=max_degree)

    __rmul__ = __mul__

    def __neg__(self) -> "UnivariatePolynomial":
        return self * -1

    # ------------------------------------------------------------------
    # Comparisons / hashing / repr
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnivariatePolynomial):
            return NotImplemented
        return self._coefficients == other._coefficients

    def __hash__(self) -> int:
        return hash(tuple(self._coefficients))

    def almost_equal(
        self, other: "UnivariatePolynomial", tolerance: float = 1e-9
    ) -> bool:
        """Return True when every coefficient differs by at most tolerance."""
        n = max(len(self._coefficients), len(other._coefficients))
        return all(
            abs(self.coefficient(i) - other.coefficient(i)) <= tolerance
            for i in range(n)
        )

    def __repr__(self) -> str:
        terms = []
        for exponent, coeff in enumerate(self._coefficients):
            if coeff == 0 and self.degree > 0:
                continue
            if exponent == 0:
                terms.append(f"{coeff}")
            elif exponent == 1:
                terms.append(f"{coeff}*x")
            else:
                terms.append(f"{coeff}*x^{exponent}")
        body = " + ".join(terms) if terms else "0"
        return f"UnivariatePolynomial({body})"
