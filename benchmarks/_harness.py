"""Shared reporting helpers for the benchmark / experiment harness.

Every experiment (see DESIGN.md, Section 2) produces a small table of
measured quantities -- empirical optimality gaps, approximation ratios,
runtimes -- alongside the pytest-benchmark timing statistics.  The helpers
here print those tables and persist them under ``benchmarks/results/`` --
a text rendering plus a machine-readable JSON document that records the
active compute backend (``repro.engine``) and the host fingerprint
(cpu count, platform, python version), so BENCH trajectories can tell
NumPy runs from pure-Python runs and the planner's calibration fitter
(:mod:`repro.query.calibration`) can reject tables measured on a
different machine.  Everything can be regenerated with a single
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable, Sequence

from repro.engine import get_backend
from repro.query.calibration import host_fingerprint

RESULTS_DIRECTORY = os.path.join(os.path.dirname(__file__), "results")


def active_backend() -> str:
    """Name of the compute backend benchmarks are running on."""
    return get_backend().name


def format_table(
    header: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width text table."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(str(column)) for column in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append(" | ".join(str(c).ljust(w) for c, w in zip(header, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def report(
    experiment: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: str = "",
) -> str:
    """Print an experiment table and persist it under benchmarks/results/."""
    rows = [list(row) for row in rows]
    table = format_table(header, rows)
    backend = active_backend()
    body = f"[{experiment}] {title} (backend: {backend})\n{table}"
    if notes:
        body += f"\n{notes}"
    print("\n" + body)
    os.makedirs(RESULTS_DIRECTORY, exist_ok=True)
    path = os.path.join(RESULTS_DIRECTORY, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(body + "\n")
    document = {
        "experiment": experiment,
        "title": title,
        "backend": backend,
        "host": host_fingerprint(),
        "header": list(header),
        "rows": [[_json_cell(cell) for cell in row] for row in rows],
        "notes": notes,
    }
    json_path = os.path.join(RESULTS_DIRECTORY, f"{experiment}.json")
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return body


def _json_cell(cell: object) -> object:
    if isinstance(cell, float) and (math.isnan(cell) or math.isinf(cell)):
        return None  # keep the document strict JSON (no bare NaN/Infinity)
    if isinstance(cell, (int, float, str, bool)) or cell is None:
        return cell
    return str(cell)
