"""Unit and property tests for dense bivariate polynomials."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polynomials import BivariatePolynomial

matrices = st.lists(
    st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=4),
    min_size=1,
    max_size=4,
)


class TestConstruction:
    def test_zero(self):
        p = BivariatePolynomial.zero()
        assert p.degree_x == 0 and p.degree_y == 0
        assert p.coefficient(0, 0) == 0

    def test_constants_and_variables(self):
        assert BivariatePolynomial.constant(2.5).evaluate(3, 4) == 2.5
        assert BivariatePolynomial.variable_x().evaluate(3, 4) == 3
        assert BivariatePolynomial.variable_y().evaluate(3, 4) == 4
        assert BivariatePolynomial.one().coefficient(0, 0) == 1

    def test_monomial(self):
        m = BivariatePolynomial.monomial(2.0, 1, 2)
        assert m.coefficient(1, 2) == 2.0
        assert m.evaluate(2, 3) == 2.0 * 2 * 9

    def test_monomial_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            BivariatePolynomial.monomial(1.0, -1, 0)

    def test_trimming(self):
        p = BivariatePolynomial([[1, 0, 0], [0, 0, 0]])
        assert p.degree_x == 0 and p.degree_y == 0

    def test_coefficient_out_of_range(self):
        p = BivariatePolynomial([[1]])
        assert p.coefficient(5, 5) == 0
        with pytest.raises(ValueError):
            p.coefficient(-1, 0)


class TestArithmetic:
    def test_addition_and_subtraction(self):
        p = BivariatePolynomial([[1, 2], [3, 0]])
        q = BivariatePolynomial([[0, 1]])
        assert (p + q).coefficient(0, 1) == 3
        assert (p - p).rows == ((0,),)

    def test_scalar_operations(self):
        p = BivariatePolynomial([[1, 2]])
        assert (p * 2).coefficient(0, 1) == 4
        assert (p + 1).coefficient(0, 0) == 2
        assert (-p).coefficient(0, 1) == -2

    def test_multiplication(self):
        # (x + y)^2 = x^2 + 2xy + y^2
        x_plus_y = BivariatePolynomial.variable_x() + BivariatePolynomial.variable_y()
        square = x_plus_y * x_plus_y
        assert square.coefficient(2, 0) == 1
        assert square.coefficient(1, 1) == 2
        assert square.coefficient(0, 2) == 1

    def test_truncation(self):
        x = BivariatePolynomial.variable_x(max_degree_x=1)
        y = BivariatePolynomial.variable_y(max_degree_x=1)
        product = (x + y) * (x + y)
        assert product.coefficient(2, 0) == 0  # truncated away
        assert product.coefficient(1, 1) == 2

    def test_unsupported_operand(self):
        with pytest.raises(TypeError):
            BivariatePolynomial([[1]]) * "bad"

    def test_bad_variable_limits_merge(self):
        p = BivariatePolynomial([[1, 1]], max_degree_y=3)
        q = BivariatePolynomial([[1, 1]], max_degree_y=1)
        assert (p * q).coefficient(0, 2) == 0


class TestExtraction:
    def test_terms(self):
        p = BivariatePolynomial([[0, 1], [2, 0]])
        assert set(p.terms()) == {(0, 1, 1), (1, 0, 2)}

    def test_coefficients_of_y(self):
        p = BivariatePolynomial([[0, 1], [0, 3], [5, 0]])
        assert p.coefficients_of_y(1) == [1, 3, 0]
        assert p.coefficients_of_y(0) == [0, 0, 5]

    def test_sum_of_coefficients(self):
        p = BivariatePolynomial([[0.25, 0.25], [0.5, 0]])
        assert math.isclose(p.sum_of_coefficients(), 1.0)

    def test_equality_hash_repr(self):
        p = BivariatePolynomial([[1, 2]])
        q = BivariatePolynomial([[1, 2], [0, 0]])
        assert p == q
        assert hash(p) == hash(q)
        assert "x" in repr(BivariatePolynomial([[0, 0], [1, 0]]))
        assert p.almost_equal(BivariatePolynomial([[1 + 1e-12, 2]]))


class TestProperties:
    @given(matrices, matrices, st.floats(-2, 2), st.floats(-2, 2))
    @settings(max_examples=50, deadline=None)
    def test_addition_pointwise(self, a, b, x, y):
        p, q = BivariatePolynomial(a), BivariatePolynomial(b)
        assert math.isclose(
            (p + q).evaluate(x, y),
            p.evaluate(x, y) + q.evaluate(x, y),
            rel_tol=1e-8,
            abs_tol=1e-6,
        )

    @given(matrices, matrices, st.floats(-2, 2), st.floats(-2, 2))
    @settings(max_examples=50, deadline=None)
    def test_multiplication_pointwise(self, a, b, x, y):
        p, q = BivariatePolynomial(a), BivariatePolynomial(b)
        assert math.isclose(
            (p * q).evaluate(x, y),
            p.evaluate(x, y) * q.evaluate(x, y),
            rel_tol=1e-6,
            abs_tol=1e-5,
        )

    @given(matrices, matrices)
    @settings(max_examples=50, deadline=None)
    def test_multiplication_commutes(self, a, b):
        p, q = BivariatePolynomial(a), BivariatePolynomial(b)
        assert (p * q).almost_equal(q * p, tolerance=1e-8)
