"""Distances between Top-k answers (Section 5.1 of the paper).

A Top-k answer is an ordered list of ``k`` distinct items (tuple keys).  The
paper works with four distances from Fagin, Kumar and Sivakumar's
"Comparing top k lists":

* the normalised symmetric difference metric ``d_Δ``,
* the intersection metric ``d_I`` (an average of prefix symmetric
  differences),
* the Spearman footrule distance with location parameter ``ℓ`` (``F^(ℓ)``,
  with the natural choice ``ℓ = k + 1`` written ``d_F``), and
* the Kendall tau distance ``d_K`` between Top-k lists (the number of pairs
  whose relative order necessarily disagrees in every pair of full rankings
  extending the two lists).

All functions accept sequences of hashable items.  The two lists may have
different lengths (a world with fewer than ``k`` tuples yields a shorter
answer); ``k`` defaults to the longer of the two.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence

from repro.exceptions import DistanceError

TopKAnswer = Sequence[Hashable]


def _validate(answer: TopKAnswer) -> None:
    if len(set(answer)) != len(answer):
        raise DistanceError(f"Top-k answer contains duplicates: {answer!r}")


def _positions(answer: TopKAnswer) -> Dict[Hashable, int]:
    """1-based positions of the items in a Top-k list."""
    return {item: index + 1 for index, item in enumerate(answer)}


def topk_symmetric_difference(
    first: TopKAnswer,
    second: TopKAnswer,
    k: int | None = None,
    normalized: bool = True,
) -> float:
    """Symmetric difference distance between two Top-k lists.

    The normalised version divides by ``2k`` so the value lies in [0, 1]
    (Section 5.1).  Ordering of the lists is ignored.
    """
    _validate(first)
    _validate(second)
    if k is None:
        k = max(len(first), len(second))
    a = frozenset(first)
    b = frozenset(second)
    raw = float(len(a.symmetric_difference(b)))
    if not normalized:
        return raw
    if k == 0:
        return 0.0
    return raw / (2.0 * k)


def topk_intersection_distance(
    first: TopKAnswer, second: TopKAnswer, k: int | None = None
) -> float:
    """The intersection metric ``d_I`` between two Top-k lists.

    ``d_I(τ1, τ2) = (1/k) * Σ_{i=1..k} d_Δ(τ1^i, τ2^i)`` where ``τ^i`` is the
    restriction of a list to its first ``i`` items.  Unlike the symmetric
    difference metric it is sensitive to the order of the items.
    """
    _validate(first)
    _validate(second)
    if k is None:
        k = max(len(first), len(second))
    if k == 0:
        return 0.0
    total = 0.0
    for i in range(1, k + 1):
        prefix_a = frozenset(first[:i])
        prefix_b = frozenset(second[:i])
        total += len(prefix_a.symmetric_difference(prefix_b)) / (2.0 * i)
    return total / k


def topk_footrule_distance(
    first: TopKAnswer,
    second: TopKAnswer,
    k: int | None = None,
    location: int | None = None,
) -> float:
    """Spearman footrule distance with location parameter ``ℓ``.

    Missing elements of each list are placed at position ``ℓ`` and the usual
    footrule (L1 distance between position vectors) is computed.  The natural
    choice ``ℓ = k + 1`` gives the metric written ``d_F`` in the paper.

    The closed form used here is the one quoted in Section 5.1:

    ``d_F(τ1, τ2) = (k+1) |τ1 Δ τ2| + Σ_{t ∈ τ1 ∩ τ2} |τ1(t) − τ2(t)|
    − Σ_{t ∈ τ1 \\ τ2} τ1(t) − Σ_{t ∈ τ2 \\ τ1} τ2(t)``

    generalised to an arbitrary location parameter.
    """
    _validate(first)
    _validate(second)
    if k is None:
        k = max(len(first), len(second))
    if location is None:
        location = k + 1
    if location <= k and (len(first) == k or len(second) == k):
        if location < max(len(first), len(second)):
            raise DistanceError(
                "location parameter must be at least the list length"
            )
    positions_a = _positions(first)
    positions_b = _positions(second)
    total = 0.0
    for item in set(positions_a) | set(positions_b):
        position_a = positions_a.get(item, location)
        position_b = positions_b.get(item, location)
        total += abs(position_a - position_b)
    return total


def topk_kendall_distance(
    first: TopKAnswer, second: TopKAnswer
) -> float:
    """Kendall tau distance between two Top-k lists.

    Counts unordered pairs ``(i, j)`` of items whose relative order disagrees
    in *every* pair of full rankings extending the two lists (Fagin et al.'s
    ``K^(0)`` / "K-min" distance).  The cases are:

    1. Both items appear in both lists and the lists order them oppositely.
    2. Both items appear in one list (say ``i`` above ``j``), and only ``j``
       appears in the other list -- then the other list necessarily places
       ``j`` above ``i``.
    3. ``i`` appears only in the first list and ``j`` appears only in the
       second list -- each list necessarily places its own member above the
       other's.
    4. Pairs missing from one list entirely contribute 0.
    """
    _validate(first)
    _validate(second)
    positions_a = _positions(first)
    positions_b = _positions(second)
    items = sorted(set(positions_a) | set(positions_b), key=repr)
    distance = 0.0
    for index, item_i in enumerate(items):
        for item_j in items[index + 1:]:
            i_in_a, j_in_a = item_i in positions_a, item_j in positions_a
            i_in_b, j_in_b = item_i in positions_b, item_j in positions_b
            if i_in_a and j_in_a and i_in_b and j_in_b:
                # Case 1: both items in both lists -- penalise opposite order.
                order_a = positions_a[item_i] < positions_a[item_j]
                order_b = positions_b[item_i] < positions_b[item_j]
                if order_a != order_b:
                    distance += 1.0
            elif i_in_a and j_in_a and (i_in_b != j_in_b):
                # Case 2: both in the first list, exactly one in the second.
                # The second list necessarily ranks its member above the
                # missing one; penalise if the first list says otherwise.
                present = item_i if i_in_b else item_j
                absent = item_j if i_in_b else item_i
                if positions_a[absent] < positions_a[present]:
                    distance += 1.0
            elif i_in_b and j_in_b and (i_in_a != j_in_a):
                # Case 2 with the roles of the lists swapped.
                present = item_i if i_in_a else item_j
                absent = item_j if i_in_a else item_i
                if positions_b[absent] < positions_b[present]:
                    distance += 1.0
            elif (i_in_a and not i_in_b and j_in_b and not j_in_a) or (
                i_in_b and not i_in_a and j_in_a and not j_in_b
            ):
                # Case 3: each item appears in exactly one list, and they
                # appear in different lists -- every extension disagrees.
                distance += 1.0
            # Case 4: a pair with an item in neither list contributes 0.
    return distance


def footrule_upper_bounds_kendall(
    first: TopKAnswer, second: TopKAnswer
) -> bool:
    """Check the classical inequality ``d_K <= d_F`` for two Top-k lists.

    Used by property tests: the footrule distance with location parameter
    ``k+1`` upper-bounds the Kendall distance, which is the basis of the
    paper's 2-approximation for ``d_K`` (Section 5.5).
    """
    return topk_kendall_distance(first, second) <= topk_footrule_distance(
        first, second
    ) + 1e-12
