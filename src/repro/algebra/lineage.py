"""Boolean lineage formulas over base-tuple events.

A lineage formula records how a result tuple of an SPJ query depends on the
base tuples: a join conjoins lineages, a duplicate-eliminating projection
disjoins them.  Atoms refer to entries of an
:class:`~repro.algebra.relations.EventSpace` (a BID-style collection of
mutually exclusive alternatives grouped into independent blocks).

Formulas are immutable and evaluated against a concrete choice of one
alternative (or nothing) per block.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Mapping, Tuple

from repro.exceptions import LineageError


class LineageFormula:
    """Abstract base class for lineage formulas."""

    __slots__ = ()

    def atoms(self) -> FrozenSet[Hashable]:
        """The set of atom identifiers mentioned by the formula."""
        raise NotImplementedError

    def evaluate(self, true_atoms: Mapping[Hashable, bool] | Iterable[Hashable]) -> bool:
        """Evaluate the formula against the set (or mapping) of true atoms."""
        raise NotImplementedError

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "LineageFormula") -> "LineageFormula":
        return Conjunction((self, other)).simplified()

    def __or__(self, other: "LineageFormula") -> "LineageFormula":
        return Disjunction((self, other)).simplified()

    def __invert__(self) -> "LineageFormula":
        return Negation(self).simplified()

    def simplified(self) -> "LineageFormula":
        """Return a lightly simplified equivalent formula."""
        return self


def _truth_lookup(
    true_atoms: Mapping[Hashable, bool] | Iterable[Hashable]
) -> Mapping[Hashable, bool]:
    if isinstance(true_atoms, Mapping):
        return true_atoms
    atoms = set(true_atoms)
    return {atom: True for atom in atoms}


class TrueEvent(LineageFormula):
    """The always-true lineage (certain tuples)."""

    __slots__ = ()

    def atoms(self) -> FrozenSet[Hashable]:
        return frozenset()

    def evaluate(self, true_atoms) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "TRUE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TrueEvent)

    def __hash__(self) -> int:
        return hash("TrueEvent")


class FalseEvent(LineageFormula):
    """The always-false lineage (impossible tuples)."""

    __slots__ = ()

    def atoms(self) -> FrozenSet[Hashable]:
        return frozenset()

    def evaluate(self, true_atoms) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "FALSE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FalseEvent)

    def __hash__(self) -> int:
        return hash("FalseEvent")


class AtomEvent(LineageFormula):
    """An atomic event: "this base alternative is present"."""

    __slots__ = ("identifier",)

    def __init__(self, identifier: Hashable) -> None:
        self.identifier = identifier

    def atoms(self) -> FrozenSet[Hashable]:
        return frozenset((self.identifier,))

    def evaluate(self, true_atoms) -> bool:
        lookup = _truth_lookup(true_atoms)
        return bool(lookup.get(self.identifier, False))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Atom({self.identifier!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AtomEvent) and self.identifier == other.identifier

    def __hash__(self) -> int:
        return hash(("AtomEvent", self.identifier))


class Negation(LineageFormula):
    """Logical negation of a lineage formula."""

    __slots__ = ("operand",)

    def __init__(self, operand: LineageFormula) -> None:
        if not isinstance(operand, LineageFormula):
            raise LineageError("Negation expects a LineageFormula")
        self.operand = operand

    def atoms(self) -> FrozenSet[Hashable]:
        return self.operand.atoms()

    def evaluate(self, true_atoms) -> bool:
        return not self.operand.evaluate(true_atoms)

    def simplified(self) -> LineageFormula:
        if isinstance(self.operand, TrueEvent):
            return FalseEvent()
        if isinstance(self.operand, FalseEvent):
            return TrueEvent()
        if isinstance(self.operand, Negation):
            return self.operand.operand
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Not({self.operand!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Negation) and self.operand == other.operand

    def __hash__(self) -> int:
        return hash(("Negation", self.operand))


class _NaryFormula(LineageFormula):
    """Shared implementation of conjunction and disjunction."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[LineageFormula]) -> None:
        flattened = []
        for operand in operands:
            if not isinstance(operand, LineageFormula):
                raise LineageError(
                    f"expected a LineageFormula, got {type(operand).__name__}"
                )
            if isinstance(operand, type(self)):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        self.operands: Tuple[LineageFormula, ...] = tuple(flattened)

    def atoms(self) -> FrozenSet[Hashable]:
        out: FrozenSet[Hashable] = frozenset()
        for operand in self.operands:
            out |= operand.atoms()
        return out

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))


class Conjunction(_NaryFormula):
    """Logical AND of lineage formulas (join lineage)."""

    __slots__ = ()

    def evaluate(self, true_atoms) -> bool:
        lookup = _truth_lookup(true_atoms)
        return all(operand.evaluate(lookup) for operand in self.operands)

    def simplified(self) -> LineageFormula:
        operands = [
            operand for operand in self.operands
            if not isinstance(operand, TrueEvent)
        ]
        if any(isinstance(operand, FalseEvent) for operand in operands):
            return FalseEvent()
        if not operands:
            return TrueEvent()
        if len(operands) == 1:
            return operands[0]
        return Conjunction(operands)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "And(" + ", ".join(repr(o) for o in self.operands) + ")"


class Disjunction(_NaryFormula):
    """Logical OR of lineage formulas (projection / duplicate elimination)."""

    __slots__ = ()

    def evaluate(self, true_atoms) -> bool:
        lookup = _truth_lookup(true_atoms)
        return any(operand.evaluate(lookup) for operand in self.operands)

    def simplified(self) -> LineageFormula:
        operands = [
            operand for operand in self.operands
            if not isinstance(operand, FalseEvent)
        ]
        if any(isinstance(operand, TrueEvent) for operand in operands):
            return TrueEvent()
        if not operands:
            return FalseEvent()
        if len(operands) == 1:
            return operands[0]
        return Disjunction(operands)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Or(" + ", ".join(repr(o) for o in self.operands) + ")"
