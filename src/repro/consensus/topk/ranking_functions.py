"""Parameterized ranking functions (Section 5.3).

The parameterized ranking function of Li, Saha and Deshpande assigns tuple
``t`` the value ``Υ_ω(t) = Σ_i ω(i) · Pr(r(t) = i)`` for a position-weight
function ``ω``.  The paper uses the special case

``Υ_H(t) = Σ_{i=1..k} (H_k - H_{i-1}) Pr(r(t) = i) = Σ_{i=1..k} Pr(r(t) <= i)/i``

whose Top-k answer is an ``H_k``-approximation of the mean consensus answer
under the intersection metric.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable

from repro.consensus.topk.common import (
    TreeOrStatistics,
    as_session,
    validate_k,
)
from repro.engine import RankMatrix


def harmonic_number(n: int) -> float:
    """The ``n``-th harmonic number ``H_n`` (``H_0 = 0``)."""
    if n < 0:
        raise ValueError("harmonic numbers are defined for n >= 0")
    return sum(1.0 / i for i in range(1, n + 1))


def parameterized_ranking_function(
    source: TreeOrStatistics,
    weight: Callable[[int], float],
    max_rank: int,
) -> Dict[Hashable, float]:
    """``Υ_ω(t) = Σ_{i=1..max_rank} ω(i) Pr(r(t) = i)`` for every tuple.

    Evaluated for all tuples at once as a matrix-vector product of the
    batched :class:`~repro.engine.RankMatrix` with the weight vector.
    """
    session = as_session(source)
    matrix: RankMatrix = session.rank_matrix(max_rank)
    weights = [weight(position) for position in range(1, max_rank + 1)]
    return matrix.weighted_sums(weights)


def upsilon_h(source: TreeOrStatistics, k: int) -> Dict[Hashable, float]:
    """The ``Υ_H`` ranking function: ``Σ_{i=1..k} Pr(r(t) <= i) / i``."""
    session = as_session(source)
    validate_k(session, k)
    h_k = harmonic_number(k)
    return parameterized_ranking_function(
        session,
        weight=lambda position: h_k - harmonic_number(position - 1),
        max_rank=k,
    )
