"""Tests for tree statistics, enumeration limits and Monte-Carlo sampling."""

from __future__ import annotations

import math
import random

import pytest

from repro.andxor.builders import (
    bid_tree,
    coexistence_group_tree,
    figure1_bid_example,
    from_explicit_worlds,
)
from repro.andxor.enumeration import count_worlds_upper_bound, enumerate_worlds
from repro.andxor.sampling import estimate_expectation, sample_world, sample_worlds
from repro.andxor.statistics import (
    alternative_probability_table,
    both_absent_probability,
    co_membership_probability,
    membership_probability,
    presence_vector,
    tuple_probability,
    value_agreement_probability,
)
from repro.core.tuples import TupleAlternative
from repro.exceptions import EnumerationLimitError
from tests.conftest import small_bid, small_xtuple


class TestStatistics:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_membership_matches_enumeration(self, seed):
        tree = small_bid(seed, blocks=4).tree
        distribution = enumerate_worlds(tree)
        for alternative, probability in alternative_probability_table(tree):
            assert math.isclose(
                probability,
                distribution.alternative_probability(alternative),
                abs_tol=1e-9,
            )
            assert math.isclose(
                membership_probability(tree, alternative), probability
            )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_presence_vector_matches_enumeration(self, seed):
        tree = small_xtuple(seed, groups=3).tree
        distribution = enumerate_worlds(tree)
        for key, probability in presence_vector(tree).items():
            assert math.isclose(
                probability, distribution.key_probability(key), abs_tol=1e-9
            )
            assert math.isclose(tuple_probability(tree, key), probability)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_co_membership_matches_enumeration(self, seed):
        tree = small_bid(seed, blocks=4).tree
        distribution = enumerate_worlds(tree)
        keys = tree.keys()
        for i, first in enumerate(keys):
            for second in keys[i:]:
                expected = distribution.probability_that(
                    lambda w: w.contains_key(first) and w.contains_key(second)
                )
                assert math.isclose(
                    co_membership_probability(tree, first, second),
                    expected,
                    abs_tol=1e-9,
                )

    def test_value_agreement_probability(self):
        tree = bid_tree(
            [
                ("a", [("red", 0.6), ("blue", 0.4)]),
                ("b", [("red", 0.5), ("blue", 0.3)]),
            ]
        )
        assert math.isclose(
            value_agreement_probability(tree, "a", "b"), 0.6 * 0.5 + 0.4 * 0.3
        )
        assert math.isclose(value_agreement_probability(tree, "a", "a"), 1.0)

    def test_value_agreement_matches_generating_function_route(self):
        """The paper computes w_{ti,tj} as the x^2 coefficient of a generating
        function; the closed form must agree (Section 6.2)."""
        from repro.andxor.generating import univariate_generating_function

        tree = small_bid(11, blocks=4).tree
        keys = tree.keys()
        for i, first in enumerate(keys):
            for second in keys[i + 1:]:
                values = {
                    a.value for a in tree.alternatives_of(first)
                } & {a.value for a in tree.alternatives_of(second)}
                total = 0.0
                for value in values:
                    marked = {
                        (first, value),
                        (second, value),
                    }
                    polynomial = univariate_generating_function(
                        tree,
                        marked=lambda leaf: (
                            leaf.alternative.key,
                            leaf.alternative.value,
                        ) in marked,
                    )
                    total += polynomial.coefficient(2)
                assert math.isclose(
                    value_agreement_probability(tree, first, second),
                    total,
                    abs_tol=1e-9,
                )

    def test_both_absent_probability(self):
        tree = bid_tree(
            [("a", [(1, 0.6)]), ("b", [(2, 0.5)])]
        )
        assert math.isclose(both_absent_probability(tree, "a", "b"), 0.4 * 0.5)

    def test_both_absent_with_correlation(self):
        tree = from_explicit_worlds(
            [([("a", 1)], 0.3), ([("b", 2)], 0.3), ([], 0.4)]
        )
        assert math.isclose(both_absent_probability(tree, "a", "b"), 0.4)


class TestEnumeration:
    def test_enumeration_limit(self):
        tree = small_bid(1, blocks=8, max_alternatives=3).tree
        with pytest.raises(EnumerationLimitError):
            enumerate_worlds(tree, limit=4)

    def test_count_upper_bound(self):
        tree = figure1_bid_example()
        assert count_worlds_upper_bound(tree) >= len(enumerate_worlds(tree))

    def test_enumeration_of_coexistence_groups(self):
        tree = coexistence_group_tree([([("a", 1), ("b", 2)], 0.5)])
        distribution = enumerate_worlds(tree)
        assert len(distribution) == 2
        sizes = sorted(len(world) for world in distribution.worlds)
        assert sizes == [0, 2]


class TestSampling:
    def test_sampled_frequencies_match_marginals(self):
        tree = figure1_bid_example()
        rng = random.Random(42)
        samples = sample_worlds(tree, 4000, rng)
        for alternative, probability in alternative_probability_table(tree):
            frequency = sum(
                1 for world in samples if alternative in world
            ) / len(samples)
            assert abs(frequency - probability) < 0.05

    def test_sample_world_respects_key_constraint(self):
        tree = small_bid(5, blocks=5).tree
        rng = random.Random(1)
        for _ in range(200):
            world = sample_world(tree, rng)
            keys = [a.key for a in world]
            assert len(keys) == len(set(keys))

    def test_estimate_expectation(self):
        tree = figure1_bid_example()
        estimate = estimate_expectation(
            tree, lambda world: float(len(world)), samples=4000,
            rng=random.Random(3),
        )
        assert abs(estimate - tree.expected_world_size()) < 0.1

    def test_estimate_expectation_requires_positive_samples(self):
        with pytest.raises(ValueError):
            estimate_expectation(figure1_bid_example(), len, samples=0)
