"""Query-session cache correctness and batched-kernel parity.

The session layer promises three things, all exercised here:

* **Parity** -- warm-cache results bitwise-match direct module-level calls
  on fresh statistics, across both array backends (1e-9 tolerance).
* **Cache behaviour** -- a warm session answers a second consensus query
  (different distance, same tree) without recomputing the rank matrix,
  observable through the session's hit/miss counters.
* **Invalidation** -- changing the scores recomputes the artifacts instead
  of serving stale results.
"""

from __future__ import annotations

import math

import pytest

from tests.conftest import small_bid, small_tuple_independent, small_xtuple
from repro.andxor.rank_probabilities import RankStatistics
from repro.baselines.ranking import expected_rank_topk, global_topk
from repro.consensus.jaccard import (
    expected_jaccard_distance_to_world,
    mean_world_jaccard_tuple_independent,
)
from repro.consensus.topk.footrule import mean_topk_footrule
from repro.consensus.topk.intersection import mean_topk_intersection
from repro.consensus.topk.kendall import approximate_topk_kendall
from repro.consensus.topk.symmetric_difference import (
    mean_topk_symmetric_difference,
    median_topk_symmetric_difference,
)
from repro.engine import numpy_available, use_backend
from repro.exceptions import ConsensusError
from repro.session import QuerySession, as_session
from repro.workloads.generators import random_tuple_independent_database

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

K = 3


def assert_answers_close(left, right, tolerance=1e-9):
    answer_left, value_left = left
    answer_right, value_right = right
    assert answer_left == answer_right
    assert math.isclose(value_left, value_right, abs_tol=tolerance)


# ----------------------------------------------------------------------
# Warm-cache parity with direct calls
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_warm_session_matches_direct_calls(backend, seed):
    database = small_tuple_independent(seed, count=6)
    with use_backend(backend):
        session = QuerySession(database.tree)
        # Run everything twice: cold fills the cache, warm must serve the
        # exact same objects/values.
        for _ in range(2):
            assert_answers_close(
                session.mean_topk_symmetric_difference(K),
                mean_topk_symmetric_difference(database.tree, K),
            )
            assert_answers_close(
                session.median_topk_symmetric_difference(K),
                median_topk_symmetric_difference(database.tree, K),
            )
            assert_answers_close(
                session.mean_topk_intersection(K),
                mean_topk_intersection(database.tree, K),
            )
            assert_answers_close(
                session.mean_topk_footrule(K),
                mean_topk_footrule(database.tree, K),
            )
            assert session.approximate_topk_kendall(
                K
            ) == approximate_topk_kendall(database.tree, K)
            assert session.global_topk(K) == global_topk(database.tree, K)
            assert session.expected_rank_topk(K) == expected_rank_topk(
                database.tree, K
            )
            assert_answers_close(
                session.mean_world_jaccard(),
                mean_world_jaccard_tuple_independent(database.tree),
            )
        assert session.cache_hits > 0


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [1, 2])
def test_warm_session_matches_direct_calls_bid(backend, seed):
    database = small_bid(seed, blocks=4, max_alternatives=2)
    with use_backend(backend):
        session = QuerySession(database.tree)
        for _ in range(2):
            assert_answers_close(
                session.mean_topk_symmetric_difference(2),
                mean_topk_symmetric_difference(database.tree, 2),
            )
            assert_answers_close(
                session.mean_topk_footrule(2),
                mean_topk_footrule(database.tree, 2),
            )
            assert session.approximate_topk_kendall(
                2
            ) == approximate_topk_kendall(database.tree, 2)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_backend_parity_of_session_artifacts(seed):
    """The same session artifacts agree across backends to 1e-9."""
    database = small_tuple_independent(seed, count=6)
    results = {}
    for backend in ("python", "numpy"):
        with use_backend(backend):
            session = QuerySession(database.tree)
            results[backend] = (
                session.top_k_membership(K),
                session.preference_matrix().to_dict(),
                session.expected_rank_table(),
            )
    for left, right in zip(results["python"], results["numpy"]):
        assert left.keys() == right.keys()
        for key in left:
            assert math.isclose(left[key], right[key], abs_tol=1e-9)


# ----------------------------------------------------------------------
# Pairwise preference matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_preference_matrix_matches_scalar_pairwise(backend):
    for database in (
        small_tuple_independent(4, count=6),
        small_bid(4, blocks=4, max_alternatives=3),
        small_xtuple(4, groups=3, max_members=2),
    ):
        with use_backend(backend):
            statistics = RankStatistics(database.tree)
            matrix = statistics.preference_matrix()
            for first in statistics.keys():
                for second in statistics.keys():
                    expected = statistics.pairwise_preference(first, second)
                    assert math.isclose(
                        matrix.value(first, second), expected, abs_tol=1e-9
                    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_preference_matrix_subset_is_restriction(backend):
    database = small_tuple_independent(5, count=6)
    with use_backend(backend):
        statistics = RankStatistics(database.tree)
        full = statistics.preference_matrix()
        pool = statistics.keys()[1:4]
        sub = statistics.preference_matrix(pool)
        for first in pool:
            for second in pool:
                assert math.isclose(
                    sub.value(first, second),
                    full.value(first, second),
                    abs_tol=1e-12,
                )


def test_legacy_pairwise_dictionary_shape():
    database = small_tuple_independent(6, count=5)
    statistics = RankStatistics(database.tree)
    table = statistics.pairwise_preference_matrix()
    keys = statistics.keys()
    assert len(table) == len(keys) * (len(keys) - 1)
    assert all(first != second for first, second in table)


# ----------------------------------------------------------------------
# Jaccard prefix kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_jaccard_kernel_matches_generating_function(backend, seed):
    """The batched prefix kernel equals the per-prefix Lemma-1 evaluation."""
    database = small_tuple_independent(seed, count=6)
    tree = database.tree
    with use_backend(backend):
        from repro.andxor.statistics import alternative_probability_table
        from repro.engine import get_backend

        table = alternative_probability_table(tree)
        ordered = [
            alternative
            for alternative, _ in sorted(
                table, key=lambda pair: (-pair[1], repr(pair[0]))
            )
        ]
        probabilities = [dict(table)[a] for a in ordered]
        values = get_backend().jaccard_prefix_values(probabilities)
        for size, value in enumerate(values):
            oracle = expected_jaccard_distance_to_world(
                tree, frozenset(ordered[:size])
            )
            assert math.isclose(value, oracle, abs_tol=1e-9)


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------
def test_second_distance_reuses_rank_matrix():
    database = random_tuple_independent_database(50, rng=11)
    session = QuerySession(database.tree)
    session.mean_topk_symmetric_difference(5)
    info = session.cache_info()
    assert info["artifacts"]["rank_matrix"]["misses"] == 1
    session.mean_topk_footrule(5)  # different distance, same tree
    session.mean_topk_intersection(5)
    info = session.cache_info()
    assert info["artifacts"]["rank_matrix"]["misses"] == 1
    assert info["artifacts"]["rank_matrix"]["hits"] >= 1
    assert session.cache_hits > 0


def test_repeated_query_served_from_cache():
    database = small_tuple_independent(7, count=6)
    session = QuerySession(database.tree)
    first = session.mean_topk_footrule(K)
    hits_before = session.cache_hits
    second = session.mean_topk_footrule(K)
    assert second == first
    assert session.cache_hits == hits_before + 1


def test_as_session_reuses_statistics_session():
    database = small_tuple_independent(8, count=5)
    statistics = RankStatistics(database.tree)
    session = as_session(statistics)
    assert as_session(statistics) is session
    assert as_session(session) is session
    # Module-level calls against the statistics share the session cache.
    mean_topk_symmetric_difference(statistics, K)
    mean_topk_footrule(statistics, K)
    assert session.cache_info()["artifacts"]["rank_matrix"]["misses"] == 1


def test_validation_errors():
    database = small_tuple_independent(9, count=4)
    session = QuerySession(database.tree)
    with pytest.raises(ConsensusError):
        session.top_k_membership(0)
    with pytest.raises(ConsensusError):
        session.top_k_membership(5)
    with pytest.raises(TypeError):
        QuerySession(session)
    with pytest.raises(TypeError):
        as_session("not a tree")


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------
def test_invalidation_recomputes_instead_of_serving_stale():
    database = small_tuple_independent(10, count=6)
    session = QuerySession(database.tree)
    original_answer, _ = session.mean_topk_symmetric_difference(K)
    entries = session.cache_info()["entries"]
    assert entries > 0

    # Reverse the ranking by negating every score: the warm cache must not
    # survive the re-scoring.
    session.set_scoring(lambda alternative: -alternative.effective_score())
    assert session.cache_info()["entries"] == 0
    assert session.generation == 1
    reversed_answer, _ = session.mean_topk_symmetric_difference(K)

    # An independent session built with the same scoring agrees, so the
    # recomputation used the new scores rather than stale artifacts.
    oracle = QuerySession(
        database.tree,
        scoring=lambda alternative: -alternative.effective_score(),
    )
    assert reversed_answer == oracle.mean_topk_symmetric_difference(K)[0]

    # Restoring the original scoring restores the original answer.
    session.set_scoring(None)
    assert session.mean_topk_symmetric_difference(K)[0] == original_answer
    assert session.generation == 2


def test_adopted_session_rejects_rescoring():
    """Re-scoring a session that adopted a RankStatistics would desync the
    two score views (module calls against the statistics route through the
    session); it must be rejected."""
    database = small_tuple_independent(13, count=4)
    statistics = RankStatistics(database.tree)
    session = as_session(statistics)
    with pytest.raises(ValueError):
        session.set_scoring(lambda alternative: -alternative.effective_score())


@pytest.mark.parametrize("backend", BACKENDS)
def test_pairwise_kernel_tie_handling_matches_scalar(backend):
    """With score ties (validate_scores=False) every backend must agree
    with the scalar pairwise_preference semantics: a tie means neither
    tuple outranks the other through scores."""
    database = small_tuple_independent(14, count=4)
    tied = lambda alternative: 1.0  # noqa: E731 - every score identical
    with use_backend(backend):
        statistics = RankStatistics(
            database.tree, validate_scores=False, scoring=tied
        )
        matrix = statistics.preference_matrix()
        for first in statistics.keys():
            for second in statistics.keys():
                assert math.isclose(
                    matrix.value(first, second),
                    statistics.pairwise_preference(first, second),
                    abs_tol=1e-12,
                )


def test_invalidation_preserves_adopted_statistics_settings():
    """A session adopting a configured RankStatistics must rebuild an
    equivalent object after invalidate(), not one with default settings."""
    database = small_tuple_independent(12, count=5)
    statistics = RankStatistics(
        database.tree,
        scoring=lambda alternative: -alternative.effective_score(),
    )
    session = QuerySession(statistics)
    before = session.mean_topk_symmetric_difference(2)
    session.invalidate()
    after = session.mean_topk_symmetric_difference(2)
    assert after == before  # same (flipped) scoring survives the rebuild


def test_scoring_override_changes_ranking():
    database = small_tuple_independent(11, count=5)
    plain = QuerySession(database.tree)
    flipped = QuerySession(
        database.tree,
        scoring=lambda alternative: -alternative.effective_score(),
    )
    membership_plain = plain.top_k_membership(1)
    membership_flipped = flipped.top_k_membership(1)
    top_plain = max(membership_plain, key=membership_plain.get)
    layout = plain.independent_tuple_layout()
    # With certain probabilities equal this could tie; just assert the
    # flipped session ranks the *lowest*-scored tuple first in its layout.
    flipped_layout = flipped.independent_tuple_layout()
    assert flipped_layout[0][0] == layout[-1][0]
    assert set(membership_flipped) == set(membership_plain)
    assert top_plain in membership_flipped
