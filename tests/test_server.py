"""The HTTP front door: wire format, endpoints, and the failure surface."""

import asyncio
import json
import math
import socket
import threading
import time

import pytest

from repro.engine import numpy_available, use_backend
from repro.exceptions import (
    ConsensusError,
    DeadlineExceededError,
    ServerOverloadedError,
    ShardUnavailableError,
)
from repro.models import ShardedDatabase
from repro.query import ConsensusQuery, Query
from repro.query.answers import PlanSummary, QueryAnswer
from repro.query.wire import (
    decode_value,
    dumps,
    encode_value,
    loads,
    query_from_dict,
    query_to_dict,
)
from repro.serving import ServingExecutor
from repro.serving.metrics import ServingMetrics, ServingMetricsSnapshot
from repro.serving.requests import QUERY_KINDS, QueryRequest
from repro.server import ReproClient, ReproServer, ServerThread
from repro.server.http import HttpError
from repro.sharding.merge import MergeStatsSnapshot
from repro.sharding.procpool import IpcSnapshot
from repro.workloads import (
    generate_traffic,
    random_tuple_independent_database,
    replay_traffic,
    replay_traffic_http,
    traffic_signature,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

K = 3
BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


def _close(a, b, tolerance=1e-9):
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            _close(x, y, tolerance) for x, y in zip(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(
            _close(a[key], b[key], tolerance) for key in a
        )
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, abs_tol=tolerance)
    return a == b


def make_sharded(count=24, shard_count=4, seed=21):
    database = random_tuple_independent_database(count, rng=seed)
    return database, ShardedDatabase(database, shard_count)


# ----------------------------------------------------------------------
# Loss-free value codec
# ----------------------------------------------------------------------
class TestWireCodec:
    SAMPLES = [
        None,
        True,
        7,
        -1.5,
        "t17",
        ("t1", "t2", "t3"),
        (("t1", "t2"), 0.25),
        ["flat", ["nested", 1]],
        {"plain": 1, "keys": [2.0]},
        {1: 0.5, ("t1", 2): 0.25},
        {"__repro__": "looks-like-a-tag"},
        frozenset({("t1",), ("t2",)}),
        {"t1", "t2"},
        float("inf"),
        float("-inf"),
        (),
        {},
    ]

    @pytest.mark.parametrize("value", SAMPLES, ids=repr)
    def test_roundtrip_through_strict_json(self, value):
        document = json.dumps(encode_value(value))
        assert decode_value(json.loads(document)) == value

    def test_nan_roundtrips(self):
        back = decode_value(json.loads(json.dumps(encode_value(float("nan")))))
        assert math.isnan(back)

    def test_numpy_scalars_narrow(self):
        numpy = pytest.importorskip("numpy")
        assert encode_value(numpy.float64(0.25)) == 0.25
        assert encode_value(numpy.int64(4)) == 4
        assert encode_value((numpy.float64(0.5),)) == {
            "__repro__": "tuple",
            "items": [0.5],
        }

    def test_set_encoding_is_canonical(self):
        first = json.dumps(encode_value({"b", "a", "c"}))
        second = json.dumps(encode_value({"c", "b", "a"}))
        assert first == second

    def test_unencodable_value_raises(self):
        with pytest.raises(ConsensusError):
            encode_value(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(ConsensusError):
            decode_value({"__repro__": "no_such_tag", "items": []})

    def test_malformed_json_text_raises(self):
        with pytest.raises(ConsensusError):
            loads("not json at all {")

    if HAVE_HYPOTHESIS:
        _scalars = st.one_of(
            st.none(),
            st.booleans(),
            st.integers(-(2**40), 2**40),
            st.floats(allow_nan=False),
            st.text(max_size=8),
        )
        _values = st.recursive(
            _scalars,
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.tuples(children, children),
                st.dictionaries(st.text(max_size=4), children, max_size=4),
                st.dictionaries(
                    st.tuples(st.text(max_size=3), st.integers(0, 9)),
                    children,
                    max_size=3,
                ),
                st.frozensets(
                    st.one_of(st.integers(0, 99), st.text(max_size=4)),
                    max_size=4,
                ),
            ),
            max_leaves=12,
        )

        @given(value=_values)
        @settings(max_examples=60, deadline=None)
        def test_property_roundtrip(self, value):
            assert decode_value(json.loads(json.dumps(encode_value(value)))) == value


# ----------------------------------------------------------------------
# Request / query / answer JSON round-trips (satellite: 10 kinds x backends)
# ----------------------------------------------------------------------
class TestRequestJson:
    @pytest.mark.parametrize("kind", QUERY_KINDS)
    def test_every_kind_roundtrips(self, kind):
        request = QueryRequest.make(
            kind, K, candidates=(("t1", "t2"), ("t2", "t1")), weight=0.5
        )
        assert QueryRequest.from_json(request.to_json()) == request

    def test_json_is_canonical(self):
        request = QueryRequest.make("global_topk", 2, b=1, a=(2, 3))
        assert request.to_json() == QueryRequest.from_json(
            request.to_json()
        ).to_json()

    def test_malformed_documents_raise(self):
        with pytest.raises(ConsensusError):
            QueryRequest.from_wire(["not", "an", "object"])
        with pytest.raises(ConsensusError):
            QueryRequest.from_wire({"kind": 7})
        with pytest.raises(ConsensusError):
            QueryRequest.from_wire({"kind": "global_topk", "k": "three"})
        with pytest.raises(ConsensusError):
            QueryRequest.from_wire({"kind": "global_topk", "params": 9})

    def test_query_dict_roundtrips_declarative_fields(self):
        query = Query.topk(k=5).distance("kendall").epsilon(0.05)
        decoded = query_from_dict(query_to_dict(query))
        assert decoded == query
        assert decoded.fingerprint() == query.fingerprint()

    def test_query_dict_fingerprint_mismatch_raises(self):
        document = query_to_dict(Query.topk(k=3))
        document["fingerprint"] = "0" * 16
        with pytest.raises(ConsensusError):
            query_from_dict(document)


class TestAnswerJson:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", QUERY_KINDS)
    def test_every_kind_roundtrips_on_backend(self, kind, backend):
        with use_backend(backend):
            _, sharded = make_sharded()
            with sharded:

                async def scenario():
                    async with ServingExecutor(sharded) as executor:
                        return await executor.execute(
                            QueryRequest.make(kind, K)
                        )

                answer = asyncio.run(scenario())
            text = answer.to_json()
            decoded = QueryAnswer.from_json(text)
            assert _close(decoded.value, answer.value)
            assert decoded.query == answer.query
            assert isinstance(decoded.plan, PlanSummary)
            assert decoded.plan.route == answer.plan.route
            assert decoded.plan.algorithm == answer.plan.algorithm
            assert decoded.plan.paired == answer.plan.paired
            assert decoded.plan.hardness.paper == answer.plan.hardness.paper
            assert (decoded.stale, decoded.degraded, decoded.cached) == (
                answer.stale,
                answer.degraded,
                answer.cached,
            )
            assert _close(decoded.answer, answer.answer)
            assert _close(decoded.expected_distance, answer.expected_distance)
            if answer.estimate is not None:
                assert decoded.estimate.samples == answer.estimate.samples
                assert _close(decoded.estimate.mean, answer.estimate.mean)
                assert decoded.confidence_interval() is not None
            # Re-encoding the decoded answer is byte-identical.
            assert decoded.to_json() == text


# ----------------------------------------------------------------------
# Metrics snapshot dict round-trip (incl. ipc + robustness counters)
# ----------------------------------------------------------------------
class TestMetricsSnapshotDict:
    def _snapshot(self, ipc=None, merge=None):
        metrics = ServingMetrics()
        metrics.count_query("global_topk")
        metrics.count_query("top_k_membership")
        metrics.count_batch(2)
        metrics.latency.record(0.004)
        metrics.retries = 3
        metrics.deadline_exceeded = 1
        metrics.breaker_open = 2
        metrics.stale_served = 1
        metrics.degraded_served = 4
        metrics.updates_queued = 5
        metrics.result_cache_hits = 6
        metrics.fused_plans = 7
        return metrics.snapshot(ipc=ipc, merge=merge)

    def test_roundtrip_through_json(self):
        snapshot = self._snapshot(
            ipc=IpcSnapshot(
                commands=9, shm_bytes=4096, restarts=2, workers=4
            ),
            merge=MergeStatsSnapshot(merges=3, incremental_merges=2),
        )
        document = json.loads(json.dumps(snapshot.to_dict()))
        decoded = ServingMetricsSnapshot.from_dict(document)
        assert decoded == snapshot
        assert isinstance(decoded.ipc, IpcSnapshot)
        assert isinstance(decoded.merge, MergeStatsSnapshot)
        assert decoded.worker_restarts == 2

    def test_roundtrip_without_nested_snapshots(self):
        snapshot = self._snapshot()
        decoded = ServingMetricsSnapshot.from_dict(snapshot.to_dict())
        assert decoded == snapshot
        assert decoded.ipc is None and decoded.merge is None

    def test_deltas_survive_decoding(self):
        before = self._snapshot(ipc=IpcSnapshot(commands=2))
        after = self._snapshot(ipc=IpcSnapshot(commands=9))
        delta = ServingMetricsSnapshot.from_dict(
            after.to_dict()
        ) - ServingMetricsSnapshot.from_dict(before.to_dict())
        assert delta.queries == 0
        assert delta.ipc.commands == 7
        assert dict(delta.queries_by_kind) == {
            "global_topk": 0,
            "top_k_membership": 0,
        }


# ----------------------------------------------------------------------
# Live server: endpoints
# ----------------------------------------------------------------------
@pytest.fixture()
def server():
    database, sharded = make_sharded()
    with sharded:
        with ServerThread(sharded, max_inflight=16) as thread:
            client = thread.client()
            try:
                yield database, sharded, thread, client
            finally:
                client.close()


class TestEndpoints:
    def test_health_and_shards(self, server):
        database, sharded, _thread, client = server
        health = client.health()
        assert health["status"] == "ok"
        assert health["shard_count"] == sharded.shard_count
        assert health["open_breakers"] == []
        shards = client.shards()
        assert [s["index"] for s in shards] == list(range(sharded.shard_count))
        assert sum(s["tuples"] for s in shards) == len(database.tree.keys())
        assert all(not s["breaker_open"] for s in shards)

    def test_query_matches_in_process_answer(self, server):
        database, _sharded, _thread, client = server
        from repro.session import QuerySession

        oracle = QuerySession(database.tree)
        answer = client.query(QueryRequest.make("mean_topk_footrule", K))
        assert _close(answer.value, oracle.mean_topk_footrule(K))
        assert answer.deployment == "served"
        assert isinstance(answer.plan, PlanSummary)

    def test_declarative_query_document(self, server):
        _database, _sharded, _thread, client = server
        query = Query.topk(k=K).distance("footrule")
        answer = client.query(query)
        assert answer.query == query

    def test_result_cache_flag_survives_wire(self, server):
        _database, _sharded, _thread, client = server
        request = QueryRequest.make("top_k_membership", K)
        first = client.query(request)
        second = client.query(request)
        assert not first.cached
        assert second.cached
        assert _close(first.value, second.value)

    def test_micro_batch_with_partial_failure(self, server):
        _database, _sharded, _thread, client = server
        results = client.query_many(
            [
                QueryRequest.make("mean_topk_footrule", 2),
                QueryRequest.make("global_topk", K),
                {"kind": "no_such_kind"},
            ]
        )
        assert isinstance(results[0], QueryAnswer)
        assert isinstance(results[1], QueryAnswer)
        assert isinstance(results[2], ConsensusError)

    def test_metrics_scrape_and_delta(self, server):
        _database, _sharded, _thread, client = server
        client.query(QueryRequest.make("global_topk", K))
        first = client.metrics()
        decoded = ServingMetricsSnapshot.from_dict(first["snapshot"])
        assert decoded.queries >= 1
        client.query(QueryRequest.make("mean_topk_intersection", K))
        second = client.metrics()
        assert second["delta"] is not None
        assert second["elapsed_s"] > 0
        delta = ServingMetricsSnapshot.from_dict(second["delta"])
        assert delta.queries == 1
        admissions = second["admissions"]
        assert admissions.get("200", 0) >= 2

    def test_plans_endpoint(self, server):
        _database, _sharded, _thread, client = server
        answer = client.query(QueryRequest.make("approximate_topk_kendall", K))
        fingerprint = answer.query.fingerprint()
        plan = client.plan(fingerprint)
        assert plan["fingerprint"] == fingerprint
        assert plan["route"] == answer.plan.route
        assert "ConsensusQuery" in plan["explain"]
        with pytest.raises(ConsensusError):
            client.plan("f" * 16)

    def test_plans_cold_registry_rebuild(self, server):
        _database, _sharded, _thread, client = server
        from repro.query.compat import query_for_kind

        query = query_for_kind("expected_rank_table", None, ())
        plan = client.plan(query.fingerprint(), kind="expected_rank_table")
        assert plan["kind"] == "expected_rank_table"

    def test_update_over_the_wire(self, server):
        database, sharded, _thread, client = server
        key = sorted(database.tree.keys())[0]
        before = list(sharded.versions())
        result = client.update(key, probability=0.42)
        assert result["updated"] is True
        after = list(sharded.versions())
        assert after[sharded.shard_of(key)] == before[sharded.shard_of(key)] + 1

    def test_unknown_resource_404_and_bad_method_405(self, server):
        _database, _sharded, _thread, client = server
        status, _headers, _body = client.request("GET", "/no/such/thing")
        assert status == 404
        status, _headers, _body = client.request("GET", "/query")
        assert status == 405


# ----------------------------------------------------------------------
# Failure surface
# ----------------------------------------------------------------------
class TestFailureSurface:
    def test_malformed_json_is_400(self, server):
        _database, _sharded, thread, _client = server
        with socket.create_connection((thread.host, thread.port)) as raw:
            raw.sendall(
                b"POST /query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 8\r\nConnection: close\r\n\r\nnot json"
            )
            response = raw.recv(65536)
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_malformed_framing_is_400(self, server):
        _database, _sharded, thread, _client = server
        with socket.create_connection((thread.host, thread.port)) as raw:
            raw.sendall(b"BROKEN\r\n\r\n")
            response = raw.recv(65536)
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_bad_query_kind_is_400_typed(self, server):
        _database, _sharded, _thread, client = server
        with pytest.raises(ConsensusError):
            client.query({"kind": "no_such_kind"})

    def test_deadline_propagates_as_504(self, server):
        _database, _sharded, _thread, client = server
        with pytest.raises(DeadlineExceededError):
            client.query(
                QueryRequest.make("approximate_topk_kendall", K),
                deadline_ms=1e-6,
            )
        metrics = client.metrics()
        assert metrics["admissions"].get("504", 0) >= 1

    def test_saturated_queue_sheds_with_429(self):
        _database, sharded = make_sharded(seed=23)
        with sharded:
            with ServerThread(sharded, max_inflight=0) as thread:
                client = thread.client()
                try:
                    with pytest.raises(ServerOverloadedError) as info:
                        client.query(QueryRequest.make("global_topk", K))
                    assert info.value.retry_after > 0
                    status, headers, _body = client.request(
                        "POST",
                        "/query",
                        QueryRequest.make("global_topk", K).to_wire(),
                    )
                    assert status == 429
                    assert "retry-after" in headers
                finally:
                    client.close()

    def test_concurrent_saturation_accounts_every_admission(self):
        _database, sharded = make_sharded(seed=24)
        with sharded:
            with ServerThread(
                sharded, max_inflight=1, batch_window=0.05
            ) as thread:
                client = thread.client()
                attempts = 12
                statuses = []
                lock = threading.Lock()
                barrier = threading.Barrier(attempts)

                def blast():
                    barrier.wait()
                    status, _body = client.query_raw(
                        QueryRequest.make("top_k_membership", K)
                    )
                    with lock:
                        statuses.append(status)

                threads = [
                    threading.Thread(target=blast) for _ in range(attempts)
                ]
                for worker in threads:
                    worker.start()
                for worker in threads:
                    worker.join()
                client.close()
                admissions = thread.server.admissions
        assert len(statuses) == attempts
        assert set(statuses) <= {200, 429, 503, 504}
        assert statuses.count(429) > 0
        assert statuses.count(200) > 0
        # Every admission decision is accounted; nothing dropped silently.
        assert sum(admissions.values()) == attempts

    def test_breaker_open_without_degraded_reads_is_503(self):
        _database, sharded = make_sharded(seed=25)
        with sharded:
            executor = ServingExecutor(
                sharded,
                breaker_threshold=1,
                max_retries=0,
                degraded_reads=False,
                staleness_bound_s=0.0,
            )
            with ServerThread(executor) as thread:
                client = thread.client()
                try:
                    for shard in range(sharded.shard_count):
                        executor._record_shard_failure(shard)
                    with pytest.raises(ShardUnavailableError):
                        client.query(QueryRequest.make("top_k_membership", K))
                    metrics = client.metrics()
                    assert metrics["admissions"].get("503", 0) >= 1
                finally:
                    client.close()
            executor.close()

    def test_breaker_open_with_degraded_fallback_is_200_flagged(self):
        _database, sharded = make_sharded(seed=26)
        with sharded:
            executor = ServingExecutor(
                sharded,
                breaker_threshold=1,
                max_retries=0,
                degraded_reads=True,
                staleness_bound_s=0.0,
            )
            with ServerThread(executor) as thread:
                client = thread.client()
                try:
                    victim = 0
                    executor._record_shard_failure(victim)
                    answer = client.query(
                        QueryRequest.make("top_k_membership", K)
                    )
                    assert answer.degraded and not answer.stale
                    dead_keys = {
                        key
                        for key in sharded.keys()
                        if sharded.shard_of(key) == victim
                    }
                    assert dead_keys.isdisjoint(answer.value)
                finally:
                    client.close()
            executor.close()

    def test_graceful_drain_completes_inflight(self):
        _database, sharded = make_sharded(seed=27)
        with sharded:
            with ServerThread(
                sharded, max_inflight=8, batch_window=0.2
            ) as thread:
                client = thread.client()
                slow_result = {}

                def slow_query():
                    slow_result["status"], slow_result["body"] = (
                        client.query_raw(
                            QueryRequest.make("mean_topk_footrule", K)
                        )
                    )

                worker = threading.Thread(target=slow_query)
                worker.start()
                deadline = time.monotonic() + 5.0
                while (
                    thread.server.inflight == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                drain_client = thread.client()
                report = drain_client.drain(timeout_s=10.0)
                worker.join(timeout=10.0)
                assert report["drained"] is True
                assert report["inflight"] == 0
                # The in-flight query finished with a real answer.
                assert slow_result["status"] == 200
                # New work is refused while draining.
                status, body = drain_client.query_raw(
                    QueryRequest.make("mean_topk_footrule", K)
                )
                assert status == 503
                assert body["type"] == "ShardUnavailableError"
                assert drain_client.health()["status"] == "draining"
                drain_client.close()
                client.close()


# ----------------------------------------------------------------------
# HTTP traffic replay parity (satellite: workloads adapter)
# ----------------------------------------------------------------------
class TestHttpTrafficReplay:
    def test_replay_parity_with_in_process(self):
        keys = sorted(
            random_tuple_independent_database(24, rng=28).tree.keys()
        )
        events_http = generate_traffic(
            keys, 40, rng=91, update_ratio=0.2, k_choices=(2, 3)
        )
        events_local = generate_traffic(
            keys, 40, rng=91, update_ratio=0.2, k_choices=(2, 3)
        )
        # Seeded streams are structurally identical across processes.
        assert traffic_signature(events_http) == traffic_signature(
            events_local
        )

        _, sharded_local = make_sharded(seed=28)
        with sharded_local:

            async def scenario():
                async with ServingExecutor(sharded_local) as executor:
                    return await replay_traffic(executor, events_local)

            local_values = asyncio.run(scenario())

        _, sharded_http = make_sharded(seed=28)
        with sharded_http:
            with ServerThread(sharded_http, max_inflight=32) as thread:
                client = thread.client()
                try:
                    http_values = replay_traffic_http(
                        client, events_http, concurrency=8
                    )
                finally:
                    client.close()

        assert len(http_values) == len(local_values)
        for position, (local, remote) in enumerate(
            zip(local_values, http_values)
        ):
            assert _close(local, remote), position
