"""Tests for the Hungarian algorithm and bipartite-matching helpers."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

# The scipy oracle comparisons require the optional numeric stack; the rest
# of the suite (and the pure-Python compute backend) must pass without it.
try:
    import numpy
    from scipy.optimize import linear_sum_assignment
except ImportError:  # pragma: no cover - NumPy-free installs
    numpy = None
    linear_sum_assignment = None

requires_scipy_oracle = pytest.mark.skipif(
    linear_sum_assignment is None, reason="numpy/scipy not installed"
)

from repro.exceptions import MatchingError
from repro.matching.bipartite import (
    BipartiteGraph,
    counts_are_feasible,
    maximum_cardinality_matching,
)
from repro.matching.hungarian import (
    maximize_profit_assignment,
    minimize_cost_assignment,
)


class TestHungarian:
    def test_trivial(self):
        assignment, cost = minimize_cost_assignment([[5.0]])
        assert assignment == [0]
        assert cost == 5.0

    def test_empty(self):
        assert minimize_cost_assignment([]) == ([], 0.0)

    def test_simple_square(self):
        cost = [[4, 1, 3], [2, 0, 5], [3, 2, 2]]
        assignment, total = minimize_cost_assignment(cost)
        assert sorted(assignment) == [0, 1, 2]
        assert total == 1 + 2 + 2 or total == 5.0

    def test_rectangular(self):
        cost = [[10, 1, 10, 10], [10, 10, 1, 10]]
        assignment, total = minimize_cost_assignment(cost)
        assert assignment == [1, 2]
        assert total == 2

    def test_rows_exceed_cols_rejected(self):
        with pytest.raises(MatchingError):
            minimize_cost_assignment([[1], [2]])

    def test_ragged_matrix_rejected(self):
        with pytest.raises(MatchingError):
            minimize_cost_assignment([[1, 2], [3]])

    def test_maximize(self):
        profit = [[1, 5], [5, 1]]
        assignment, total = maximize_profit_assignment(profit)
        assert total == 10
        assert assignment == [1, 0]

    @requires_scipy_oracle
    @pytest.mark.parametrize("rows,cols,seed", [
        (3, 3, 0), (4, 6, 1), (5, 5, 2), (6, 9, 3), (8, 8, 4), (2, 10, 5),
    ])
    def test_matches_scipy(self, rows, cols, seed):
        rng = random.Random(seed)
        cost = [[rng.uniform(-10, 10) for _ in range(cols)] for _ in range(rows)]
        _, ours = minimize_cost_assignment(cost)
        row_index, col_index = linear_sum_assignment(numpy.array(cost))
        reference = float(numpy.array(cost)[row_index, col_index].sum())
        assert math.isclose(ours, reference, rel_tol=1e-9, abs_tol=1e-9)

    @requires_scipy_oracle
    @given(
        st.integers(1, 5),
        st.integers(0, 4),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_scipy_property(self, rows, extra_cols, seed):
        cols = rows + extra_cols
        rng = random.Random(seed)
        cost = [[rng.uniform(-5, 5) for _ in range(cols)] for _ in range(rows)]
        assignment, ours = minimize_cost_assignment(cost)
        assert len(set(assignment)) == rows  # all distinct columns
        row_index, col_index = linear_sum_assignment(numpy.array(cost))
        reference = float(numpy.array(cost)[row_index, col_index].sum())
        assert math.isclose(ours, reference, rel_tol=1e-8, abs_tol=1e-8)


class TestBackendAwareDispatch:
    """The package-level solver (repro.matching.minimize_cost_assignment)
    dispatches to scipy's linear_sum_assignment when the NumPy engine
    backend is active and to the Hungarian reference otherwise; both are
    exact, so totals must agree on every instance."""

    @pytest.mark.parametrize("rows,cols,seed", [
        (1, 1, 0), (3, 3, 1), (4, 7, 2), (6, 6, 3), (5, 12, 4), (8, 8, 5),
        (2, 30, 6), (10, 14, 7),
    ])
    def test_dispatch_parity_on_random_rectangular(self, rows, cols, seed):
        from repro.engine import use_backend
        from repro.matching import (
            minimize_cost_assignment as dispatched_minimize,
        )

        rng = random.Random(seed)
        cost = [
            [rng.uniform(-10, 10) for _ in range(cols)] for _ in range(rows)
        ]
        reference_assignment, reference = minimize_cost_assignment(cost)
        assert sorted(set(reference_assignment)) == sorted(
            reference_assignment
        )
        with use_backend("python"):
            pure_assignment, pure_total = dispatched_minimize(cost)
        assert pure_assignment == reference_assignment
        assert pure_total == reference
        if numpy is not None:
            with use_backend("numpy"):
                fast_assignment, fast_total = dispatched_minimize(cost)
            assert len(set(fast_assignment)) == rows
            assert all(0 <= column < cols for column in fast_assignment)
            assert math.isclose(
                fast_total, reference, rel_tol=1e-9, abs_tol=1e-9
            )

    def test_dispatch_maximize_parity(self):
        from repro.engine import get_backend
        from repro.matching import (
            maximize_profit_assignment as dispatched_maximize,
        )

        rng = random.Random(11)
        profit = [[rng.uniform(0, 9) for _ in range(6)] for _ in range(4)]
        _, reference = maximize_profit_assignment(profit)
        assignment, total = dispatched_maximize(profit)
        assert len(set(assignment)) == 4
        assert math.isclose(total, reference, rel_tol=1e-9, abs_tol=1e-9)
        assert get_backend().name in ("python", "numpy")

    def test_dispatch_preserves_error_contract(self):
        from repro.matching import (
            minimize_cost_assignment as dispatched_minimize,
        )

        assert dispatched_minimize([]) == ([], 0.0)
        with pytest.raises(MatchingError):
            dispatched_minimize([[1], [2]])
        with pytest.raises(MatchingError):
            dispatched_minimize([[1, 2], [3]])

    @requires_scipy_oracle
    def test_scipy_solver_reported_available(self):
        from repro.matching import scipy_solver_available

        assert scipy_solver_available()


class TestBipartite:
    def test_graph_construction(self):
        graph = BipartiteGraph(left=["a"], right=["x"])
        graph.add_edge("a", "x")
        graph.add_edge("b", "y")
        assert set(graph.left) == {"a", "b"}
        assert set(graph.right) == {"x", "y"}
        assert graph.neighbors("a") == ["x"]
        with pytest.raises(MatchingError):
            graph.neighbors("missing")

    def test_from_support(self):
        graph = BipartiteGraph.from_support({"a": ["x", "y"], "b": ["y"]})
        assert set(graph.neighbors("a")) == {"x", "y"}

    def test_maximum_matching_perfect(self):
        graph = BipartiteGraph.from_support(
            {"a": ["x", "y"], "b": ["x"], "c": ["z"]}
        )
        matching = maximum_cardinality_matching(graph)
        assert len(matching) == 3
        assert matching["b"] == "x"

    def test_maximum_matching_deficient(self):
        graph = BipartiteGraph.from_support({"a": ["x"], "b": ["x"]})
        matching = maximum_cardinality_matching(graph)
        assert len(matching) == 1

    def test_counts_feasibility(self):
        graph = BipartiteGraph.from_support(
            {"a": ["x", "y"], "b": ["x"], "c": ["y"]}
        )
        assert counts_are_feasible(graph, {"x": 2, "y": 1})
        assert counts_are_feasible(graph, {"x": 1, "y": 2})
        assert not counts_are_feasible(graph, {"x": 3, "y": 0})
        assert not counts_are_feasible(graph, {"x": 1, "y": 1})  # wrong total
