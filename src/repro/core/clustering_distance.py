"""The consensus-clustering distance (Section 6.2 of the paper).

A clustering of a universe ``V`` is a partition of ``V`` into disjoint
clusters.  The distance between two clusterings is the number of unordered
pairs of elements that are clustered together in one clustering but separated
in the other (the CONSENSUS-CLUSTERING metric).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Sequence

from repro.exceptions import DistanceError

Clustering = FrozenSet[FrozenSet[Hashable]]


def clustering_from_assignment(
    assignment: Mapping[Hashable, Hashable]
) -> Clustering:
    """Build a clustering from an element -> cluster-label mapping."""
    clusters: Dict[Hashable, set] = {}
    for element, label in assignment.items():
        clusters.setdefault(label, set()).add(element)
    return frozenset(frozenset(members) for members in clusters.values())


def normalize_clustering(
    clusters: Iterable[Iterable[Hashable]],
) -> Clustering:
    """Normalise an iterable of clusters into a frozenset of frozensets.

    Empty clusters are dropped; elements must not repeat across clusters.
    """
    normalized = [frozenset(cluster) for cluster in clusters]
    normalized = [cluster for cluster in normalized if cluster]
    seen: set = set()
    for cluster in normalized:
        if seen & cluster:
            raise DistanceError("clusters must be disjoint")
        seen |= cluster
    return frozenset(normalized)


def _co_clustered_pairs(clustering: Clustering) -> FrozenSet[FrozenSet[Hashable]]:
    pairs = set()
    for cluster in clustering:
        for a, b in combinations(sorted(cluster, key=repr), 2):
            pairs.add(frozenset((a, b)))
    return frozenset(pairs)


def clustering_disagreement_distance(
    first: Iterable[Iterable[Hashable]],
    second: Iterable[Iterable[Hashable]],
    universe: Sequence[Hashable] | None = None,
) -> float:
    """Number of pairs clustered together in exactly one of the clusterings.

    Elements appearing in only one clustering are treated as singletons in
    the other (they cannot be "together" with anything there).  Passing a
    ``universe`` has no effect on the value but validates that both
    clusterings cover only elements of the universe.
    """
    clustering_a = normalize_clustering(first)
    clustering_b = normalize_clustering(second)
    if universe is not None:
        allowed = set(universe)
        for clustering in (clustering_a, clustering_b):
            for cluster in clustering:
                extra = set(cluster) - allowed
                if extra:
                    raise DistanceError(
                        f"clustering mentions elements outside the universe: "
                        f"{sorted(map(repr, extra))}"
                    )
    pairs_a = _co_clustered_pairs(clustering_a)
    pairs_b = _co_clustered_pairs(clustering_b)
    return float(len(pairs_a.symmetric_difference(pairs_b)))


def clustering_agreement_ratio(
    first: Iterable[Iterable[Hashable]],
    second: Iterable[Iterable[Hashable]],
    universe: Sequence[Hashable],
) -> float:
    """Fraction of pairs on which the two clusterings agree (Rand index)."""
    n = len(set(universe))
    total_pairs = n * (n - 1) / 2
    if total_pairs == 0:
        return 1.0
    disagreements = clustering_disagreement_distance(first, second, universe)
    return 1.0 - disagreements / total_pairs
