"""Core data model: tuples, possible worlds, and answer-distance metrics.

The paper models a probabilistic relation ``R^P(K; A)`` with a possible-worlds
key ``K`` and a value attribute ``A`` (Section 3.1).  This package provides:

* :class:`~repro.core.tuples.TupleAlternative` -- a (key, value, score)
  triple representing one alternative of a probabilistic tuple.
* :class:`~repro.core.worlds.PossibleWorld` and
  :class:`~repro.core.worlds.WorldDistribution` -- an explicit possible-worlds
  representation used as ground truth in tests and benchmarks.
* Distance metrics between query answers: set distances (symmetric
  difference, Jaccard), Top-k list distances (symmetric difference,
  intersection, Spearman footrule with location parameter, Kendall tau),
  group-by count vector distance and the consensus-clustering distance.
* Brute-force consensus solvers over explicit world distributions
  (:mod:`repro.core.consensus_bruteforce`), used as oracles.
"""

from repro.core.tuples import TupleAlternative, group_alternatives_by_key
from repro.core.worlds import PossibleWorld, WorldDistribution
from repro.core.distances import (
    symmetric_difference_distance,
    jaccard_distance,
    squared_euclidean_distance,
)
from repro.core.topk_distances import (
    topk_symmetric_difference,
    topk_intersection_distance,
    topk_footrule_distance,
    topk_kendall_distance,
)
from repro.core.clustering_distance import (
    clustering_disagreement_distance,
    clustering_from_assignment,
)

__all__ = [
    "TupleAlternative",
    "group_alternatives_by_key",
    "PossibleWorld",
    "WorldDistribution",
    "symmetric_difference_distance",
    "jaccard_distance",
    "squared_euclidean_distance",
    "topk_symmetric_difference",
    "topk_intersection_distance",
    "topk_footrule_distance",
    "topk_kendall_distance",
    "clustering_disagreement_distance",
    "clustering_from_assignment",
]
