"""Convenience wrappers for the classic probabilistic database models.

Every model is represented internally as an and/xor tree
(:mod:`repro.andxor`); this package provides user-facing constructors for

* tuple-independent databases,
* block-independent disjoint (BID) relations,
* x-tuple relations,

and the :class:`~repro.models.relation.ProbabilisticRelation` facade that
bundles a tree with the query helpers used by the examples.
"""

from repro.models.relation import ProbabilisticRelation
from repro.models.tuple_independent import TupleIndependentDatabase
from repro.models.bid import BlockIndependentDatabase
from repro.models.xtuples import XTupleDatabase
from repro.models.sharded import (
    DatabaseShard,
    DatabaseSnapshot,
    ShardedDatabase,
)

__all__ = [
    "ProbabilisticRelation",
    "TupleIndependentDatabase",
    "BlockIndependentDatabase",
    "XTupleDatabase",
    "DatabaseShard",
    "DatabaseSnapshot",
    "ShardedDatabase",
]
