"""Assignment-problem and bipartite-matching substrate.

Section 5 of the paper reduces the exact mean Top-k answer under the
intersection metric and under the Spearman footrule distance to a
maximum-weight bipartite matching ("assignment") problem between tuples and
Top-k positions.  This package implements the Hungarian algorithm from
scratch (no external solver) together with small bipartite-graph helpers.
"""

from repro.matching.hungarian import (
    maximize_profit_assignment,
    minimize_cost_assignment,
)
from repro.matching.bipartite import (
    BipartiteGraph,
    maximum_cardinality_matching,
)

__all__ = [
    "minimize_cost_assignment",
    "maximize_profit_assignment",
    "BipartiteGraph",
    "maximum_cardinality_matching",
]
