#!/usr/bin/env python3
"""From SPJ queries to consensus answers, end to end.

The paper's introduction motivates consensus answers with select-project-join
queries over probabilistic databases: even when the base relations are simple
(tuple-independent or BID), the result tuples of an SPJ query can be
arbitrarily correlated, so summarising the set of possible answers needs more
than per-tuple probabilities.

This example runs the full pipeline on a small product-catalogue scenario:

1. two probabilistic base relations (uncertain product listings, uncertain
   supplier regions) are created with the lineage-based algebra;
2. a join + projection query is evaluated intensionally, producing result
   tuples annotated with lineage and, from it, the exact distribution over
   possible answers;
3. the possible answers are converted into an and/xor tree (the Figure 1(iii)
   construction) and the consensus worlds of Section 4 are computed;
4. the MAX-2-SAT flavour of the construction (Section 4.1) is shown on a tiny
   formula, reproducing the hardness argument numerically.

Run it with ``python examples/spj_lineage_consensus.py``.
"""

from __future__ import annotations

from repro.algebra import (
    DeterministicRelation,
    ProbabilisticAlgebraRelation,
    answer_distribution,
    join,
    project,
    result_probabilities,
    select,
)
from repro.andxor.builders import from_explicit_worlds
from repro.consensus.hardness import (
    build_reduction,
    exhaustive_max_2sat,
    median_answer_by_enumeration,
)
from repro.consensus.set_consensus import (
    mean_world_symmetric_difference,
    median_world_symmetric_difference,
)
from repro.core.tuples import TupleAlternative


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Probabilistic base relations with lineage
    # ------------------------------------------------------------------
    listings = ProbabilisticAlgebraRelation.from_bid_blocks(
        {
            "widget": [
                ({"product": "widget", "supplier": "acme"}, 0.6),
                ({"product": "widget", "supplier": "globex"}, 0.4),
            ],
            "gadget": [({"product": "gadget", "supplier": "acme"}, 0.7)],
            "gizmo": [({"product": "gizmo", "supplier": "initech"}, 0.5)],
        },
        name="listings",
    )
    suppliers = DeterministicRelation(
        [
            {"supplier": "acme", "region": "EU"},
            {"supplier": "globex", "region": "US"},
            {"supplier": "initech", "region": "EU"},
        ],
        name="suppliers",
    ).as_probabilistic(listings.event_space)

    # ------------------------------------------------------------------
    # 2. The query: which products are available from an EU supplier?
    # ------------------------------------------------------------------
    joined = join(listings, suppliers, on=["supplier"])
    eu_only = select(joined, lambda row: row["region"] == "EU")
    result = project(eu_only, ["product"])

    print("Result tuples of pi_product(sigma_region=EU(listings |x| suppliers)):")
    for row, probability in result_probabilities(result):
        print(f"  {row['product']:8s} with probability {probability:.3f}")

    distribution = answer_distribution(result)
    print(f"\nDistinct possible answers: {len(distribution)}")
    for answer, probability in sorted(
        distribution.items(), key=lambda item: -item[1]
    ):
        products = sorted(dict(row)["product"] for row in answer)
        label = "{" + ", ".join(products) + "}:"
        print(f"  {label:<28s} {probability:.3f}")

    # ------------------------------------------------------------------
    # 3. Consensus worlds over the answer distribution
    # ------------------------------------------------------------------
    worlds = []
    for answer, probability in distribution.items():
        alternatives = [
            TupleAlternative(dict(row)["product"], dict(row)["product"])
            for row in answer
        ]
        worlds.append((alternatives, probability))
    tree = from_explicit_worlds(worlds)

    mean_world, mean_value = mean_world_symmetric_difference(tree)
    median_world, median_value = median_world_symmetric_difference(tree)
    print("\nConsensus answers over the possible answers (Section 4):")
    print(f"  mean answer  : {sorted(a.key for a in mean_world)} "
          f"(expected symmetric difference {mean_value:.3f})")
    print(f"  median answer: {sorted(a.key for a in median_world)} "
          f"(expected symmetric difference {median_value:.3f})")

    # ------------------------------------------------------------------
    # 4. The hardness construction of Section 4.1 in miniature
    # ------------------------------------------------------------------
    print("\nThe MAX-2-SAT reduction (Section 4.1) on (x1 or not x2), "
          "(not x1 or x2), (x1 or x2):")
    reduction = build_reduction(
        [
            (("x1", True), ("x2", False)),
            (("x1", False), ("x2", True)),
            (("x1", True), ("x2", True)),
        ]
    )
    assignment, satisfied = exhaustive_max_2sat(reduction.instance)
    answer, witness, value = median_answer_by_enumeration(reduction)
    print(f"  optimal assignment satisfies {satisfied} clauses: {assignment}")
    print(f"  the median answer contains {len(answer)} clause tuples "
          f"(witnessing assignment {witness}), expected distance {value:.3f}")
    print("  -> finding the median answer is exactly as hard as MAX-2-SAT.")


if __name__ == "__main__":
    main()
