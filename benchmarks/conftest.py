"""Pytest configuration for the benchmark harness.

Ensures the shared harness helpers (``_harness.py``) are importable and that
the package itself can be imported straight from a source checkout.
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(__file__)
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)
