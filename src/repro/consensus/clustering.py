"""Consensus clustering over probabilistic databases (Section 6.2).

Two tuples are clustered together in a possible world when they take the same
value for the (uncertain) value attribute; tuples absent from the world form
one artificial "non-existent" cluster.  The consensus (mean) clustering
minimises the expected number of pairwise disagreements with the random
world's clustering.

Following the paper, the only statistics needed are the pairwise
co-clustering probabilities ``w_{ti,tj}``: the probability that ``ti`` and
``tj`` end up in the same cluster, i.e. take the same value or are both
absent.  They are computed in closed form from the and/xor tree (the paper
computes them as the ``x^2`` coefficient of a generating function; both
routes are cross-checked in the tests).  The clustering itself is produced by
the Ailon-Charikar-Newman pivot algorithm (CC-Pivot) run on the ``w`` matrix,
together with two trivial baselines (all-singletons, one-big-cluster); the
best of the three by expected distance is returned, which preserves the
constant-factor guarantee.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

from repro.andxor.statistics import (
    both_absent_probability,
    value_agreement_probability,
)
from repro.andxor.tree import AndXorTree
from repro.exceptions import ConsensusError

Clustering = FrozenSet[FrozenSet[Hashable]]
PairWeights = Dict[FrozenSet[Hashable], float]


def co_clustering_probabilities(
    tree: AndXorTree,
    include_absent_cluster: bool = True,
) -> PairWeights:
    """``w_{ti,tj}`` for every unordered pair of tuple keys.

    ``w_{ti,tj} = Σ_a Pr(ti.A = a ∧ tj.A = a)`` plus, when
    ``include_absent_cluster`` is True, the probability that both tuples are
    absent (the paper places non-existent tuples in one artificial cluster).
    """
    keys = tree.keys()
    weights: PairWeights = {}
    for first, second in combinations(keys, 2):
        weight = value_agreement_probability(tree, first, second)
        if include_absent_cluster:
            weight += both_absent_probability(tree, first, second)
        weights[frozenset((first, second))] = min(max(weight, 0.0), 1.0)
    return weights


def expected_clustering_distance(
    clustering: Sequence[Sequence[Hashable]] | Clustering,
    weights: PairWeights,
    universe: Sequence[Hashable],
) -> float:
    """Expected disagreement distance of a candidate clustering.

    A pair clustered together by the candidate disagrees with the random
    world's clustering with probability ``1 - w``; a pair separated by the
    candidate disagrees with probability ``w``.
    """
    together: set = set()
    for cluster in clustering:
        for first, second in combinations(sorted(cluster, key=repr), 2):
            together.add(frozenset((first, second)))
    total = 0.0
    for first, second in combinations(sorted(set(universe), key=repr), 2):
        pair = frozenset((first, second))
        weight = weights.get(pair, 0.0)
        if pair in together:
            total += 1.0 - weight
        else:
            total += weight
    return total


def pivot_clustering(
    universe: Sequence[Hashable],
    weights: PairWeights,
    rng: random.Random | None = None,
) -> Clustering:
    """CC-Pivot: cluster each pivot with every element co-clustered by majority.

    When ``rng`` is omitted a deterministic pivot rule is used (the element
    with the largest total co-clustering weight among the remaining ones),
    which makes results reproducible.
    """
    remaining = list(dict.fromkeys(universe))
    clusters: List[FrozenSet[Hashable]] = []
    while remaining:
        if rng is not None:
            pivot = remaining[rng.randrange(len(remaining))]
        else:
            pivot = max(
                remaining,
                key=lambda candidate: (
                    sum(
                        weights.get(frozenset((candidate, other)), 0.0)
                        for other in remaining
                        if other != candidate
                    ),
                    repr(candidate),
                ),
            )
        cluster = {pivot}
        rest: List[Hashable] = []
        for element in remaining:
            if element == pivot:
                continue
            if weights.get(frozenset((pivot, element)), 0.0) > 0.5:
                cluster.add(element)
            else:
                rest.append(element)
        clusters.append(frozenset(cluster))
        remaining = rest
    return frozenset(clusters)


def consensus_clustering(
    tree: AndXorTree,
    include_absent_cluster: bool = True,
    rng: random.Random | None = None,
    pivot_repeats: int = 5,
) -> Tuple[Clustering, float]:
    """Approximate mean consensus clustering of an and/xor tree.

    Runs CC-Pivot (several times when a random generator is supplied) and the
    two trivial clusterings, and returns the candidate with the smallest
    expected disagreement distance together with that distance.
    """
    universe = tree.keys()
    if not universe:
        raise ConsensusError("the tree has no tuples to cluster")
    weights = co_clustering_probabilities(tree, include_absent_cluster)
    candidates: List[Clustering] = []
    if rng is None:
        candidates.append(pivot_clustering(universe, weights, rng=None))
    else:
        for _ in range(max(1, pivot_repeats)):
            candidates.append(pivot_clustering(universe, weights, rng=rng))
    candidates.append(frozenset(frozenset((key,)) for key in universe))
    candidates.append(frozenset((frozenset(universe),)))
    best: Tuple[Clustering, float] | None = None
    for candidate in candidates:
        value = expected_clustering_distance(candidate, weights, universe)
        if best is None or value < best[1] - 1e-15:
            best = (candidate, value)
    assert best is not None
    return best
