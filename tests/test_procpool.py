"""Process-backed shard execution suite.

The acceptance bar for ``executor="processes"``: every merged statistic and
consensus answer gathered from worker processes must match the in-process
sharded coordinator AND an unsharded session to 1e-9, on both backends,
for 1/2/4 shards, hash and range partitioning, tuple-independent and BID
data; the version-checked update protocol must stay correct across the
process boundary (stale races abort the worker-side staged rebuild); a
dead worker must surface :class:`~repro.exceptions.WorkerCrashError`
without hanging; and seeded traffic replay must be byte-identical under
both executors.

Run under ``REPRO_PROC_START_METHOD=spawn`` in CI to catch fork-only
pickling bugs (everything a worker needs must be importable + picklable).
"""

from __future__ import annotations

import asyncio
import math

import pytest

from conftest import small_bid, small_tuple_independent
from repro.engine import numpy_available, use_backend
from repro.exceptions import (
    ModelError,
    ProcessPoolError,
    WorkerCrashError,
)
from repro.models import ShardedDatabase
from repro.models.sharded import StaleUpdateError
from repro.serving import ServingExecutor
from repro.session import CacheInfo, QuerySession
from repro.sharding.procpool import IpcSnapshot, resolve_start_method
from repro.workloads.generators import random_tuple_independent_database
from repro.workloads.traffic import (
    generate_traffic,
    replay_traffic,
    traffic_signature,
)

BACKENDS = ["python", "numpy"]
TOLERANCE = 1e-9
K = 5


def _backend_or_skip(backend_name):
    if backend_name == "numpy" and not numpy_available():
        pytest.skip("numpy not installed")
    return backend_name


def assert_rank_matrix_parity(reference_session, session, max_rank=None):
    reference = reference_session.rank_matrix(max_rank)
    merged = session.rank_matrix(max_rank)
    assert set(reference.keys()) == set(merged.keys())
    assert reference.max_rank == merged.max_rank
    for key in reference.keys():
        for expected, actual in zip(reference.row(key), merged.row(key)):
            assert abs(expected - actual) < TOLERANCE


def assert_consensus_parity(reference_session, session, k):
    mean_ref = reference_session.mean_topk_symmetric_difference(k)
    mean_got = session.mean_topk_symmetric_difference(k)
    assert mean_got[0] == mean_ref[0]
    assert math.isclose(mean_got[1], mean_ref[1], abs_tol=TOLERANCE)

    foot_ref = reference_session.mean_topk_footrule(k)
    foot_got = session.mean_topk_footrule(k)
    assert foot_got[0] == foot_ref[0]
    assert math.isclose(foot_got[1], foot_ref[1], abs_tol=TOLERANCE)

    membership_ref = reference_session.top_k_membership(k)
    membership_got = session.top_k_membership(k)
    assert set(membership_ref) == set(membership_got)
    for key, expected in membership_ref.items():
        assert abs(membership_got[key] - expected) < TOLERANCE


class TestProcessPoolParity:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("shard_count", [1, 2, 4])
    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    def test_tuple_independent(self, backend_name, shard_count, partitioner):
        _backend_or_skip(backend_name)
        with use_backend(backend_name):
            database = random_tuple_independent_database(17, rng=41)
            unsharded = QuerySession(database.tree)
            threads = ShardedDatabase(
                database, shard_count, partitioner=partitioner
            ).coordinator()
            with ShardedDatabase(
                database,
                shard_count,
                partitioner=partitioner,
                executor="processes",
            ) as sharded:
                coordinator = sharded.coordinator()
                assert_rank_matrix_parity(unsharded, coordinator, K)
                assert_rank_matrix_parity(threads, coordinator, K)
                assert_consensus_parity(unsharded, coordinator, K)

    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("shard_count", [2, 4])
    def test_block_independent(self, backend_name, shard_count):
        _backend_or_skip(backend_name)
        with use_backend(backend_name):
            database = small_bid(23, blocks=8, max_alternatives=3)
            unsharded = QuerySession(database.tree)
            with ShardedDatabase(
                database, shard_count, executor="processes"
            ) as sharded:
                coordinator = sharded.coordinator()
                assert_rank_matrix_parity(unsharded, coordinator, K)
                assert coordinator.layout_kind() == "bid"
                membership_ref = unsharded.top_k_membership(3)
                membership_got = coordinator.top_k_membership(3)
                for key, expected in membership_ref.items():
                    assert abs(membership_got[key] - expected) < TOLERANCE

    def test_best_scores_served_from_layout(self):
        database = small_tuple_independent(5, count=8)
        with ShardedDatabase(database, 2, executor="processes") as sharded:
            coordinator = sharded.coordinator()
            scores = coordinator.best_scores(coordinator.keys())
            for key in coordinator.keys():
                expected = max(
                    coordinator.score_of(alternative)
                    for alternative in coordinator.alternatives_of(key)
                )
                assert scores[key] == expected
            with pytest.raises(ModelError):
                coordinator.best_scores(["nope"])

    def test_shared_memory_transport_matches_pipe(self):
        _backend_or_skip("numpy")
        with use_backend("numpy"):
            database = random_tuple_independent_database(40, rng=7)
            reference = QuerySession(database.tree).rank_matrix(K)
            for shm in ("always", "never"):
                with ShardedDatabase(
                    database,
                    2,
                    executor="processes",
                    executor_options={"shm": shm},
                ) as sharded:
                    merged = sharded.coordinator().rank_matrix(K)
                    for key in reference.keys():
                        for expected, actual in zip(
                            reference.row(key), merged.row(key)
                        ):
                            assert abs(expected - actual) < TOLERANCE
                    stats = sharded.process_pool().stats()
                    if shm == "always":
                        assert stats.shm_messages > 0
                        assert stats.pipe_messages == 0
                    else:
                        assert stats.shm_messages == 0
                        assert stats.pipe_messages > 0
                    assert stats.total_bytes > 0


class TestUpdateProtocol:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_update_parity_across_processes(self, backend_name):
        _backend_or_skip(backend_name)
        with use_backend(backend_name):
            database = random_tuple_independent_database(17, rng=13)
            plain = ShardedDatabase(database, 2)
            with ShardedDatabase(
                database, 2, executor="processes"
            ) as pooled:
                key = plain.keys()[3]
                for db in (plain, pooled):
                    db.update_tuple(key, probability=0.125)
                assert_rank_matrix_parity(
                    plain.coordinator(), pooled.coordinator(), K
                )

    def test_stale_race_aborts_worker_side_staging(self):
        database = small_tuple_independent(3, count=10)
        with ShardedDatabase(database, 2, executor="processes") as sharded:
            key = sharded.keys()[0]
            shard_index = sharded.shard_of(key)
            pool = sharded.process_pool()
            first = sharded.prepare_update(key, probability=0.3)
            second = sharded.prepare_update(key, probability=0.7)
            assert pool.staged_count(shard_index) == 2
            sharded.apply_update(first)
            with pytest.raises(StaleUpdateError):
                sharded.apply_update(second)
            # The loser's staged rebuild must be dropped on the worker too.
            assert pool.staged_count(shard_index) == 0
            # The winner is live: a fresh merge reflects probability 0.3.
            summaries = pool.summaries(K, use_cache=False)
            probabilities = {
                k: p
                for summary in summaries
                for k, p in zip(summary.keys(), summary.probabilities())
            }
            assert abs(probabilities[key] - 0.3) < TOLERANCE

    def test_retry_after_stale_succeeds(self):
        database = small_tuple_independent(9, count=10)
        with ShardedDatabase(database, 2, executor="processes") as sharded:
            key = sharded.keys()[1]
            loser = sharded.prepare_update(key, probability=0.6)
            sharded.update_tuple(key, probability=0.2)
            with pytest.raises(StaleUpdateError):
                sharded.apply_update(loser)
            sharded.update_tuple(key, probability=0.6)  # re-prepare + apply
            merged = sharded.coordinator()
            reference = ShardedDatabase(database, 1)
            reference.update_tuple(key, probability=0.6)
            assert_rank_matrix_parity(
                reference.coordinator(), merged, K
            )


class TestWorkerFailure:
    def test_crash_surfaces_without_hang(self):
        database = small_tuple_independent(21, count=12)
        with ShardedDatabase(database, 2, executor="processes") as sharded:
            pool = sharded.process_pool()
            victim = pool.shard_indices()[0]
            with pytest.raises(WorkerCrashError) as info:
                pool._request(victim, "exit-now")
            assert "died" in str(info.value)

    def test_pool_rebuilds_after_close(self):
        database = small_tuple_independent(21, count=12)
        with ShardedDatabase(database, 2, executor="processes") as sharded:
            before = sharded.coordinator().rank_matrix(K)
            first_pool = sharded.process_pool()
            first_pool.close()
            with pytest.raises(ProcessPoolError):
                first_pool.start()
            second_pool = sharded.process_pool()
            assert second_pool is not first_pool
            sharded.coordinator().invalidate()
            after = sharded.coordinator().rank_matrix(K)
            for key in before.keys():
                for expected, actual in zip(before.row(key), after.row(key)):
                    assert abs(expected - actual) < TOLERANCE

    def test_close_is_idempotent(self):
        database = small_tuple_independent(2, count=6)
        sharded = ShardedDatabase(database, 2, executor="processes")
        pool = sharded.process_pool()
        assert pool.worker_count() > 0
        sharded.close()
        sharded.close()
        pool.close()
        assert pool.closed

    def test_unknown_command_is_a_remote_error(self):
        database = small_tuple_independent(2, count=6)
        with ShardedDatabase(database, 2, executor="processes") as sharded:
            pool = sharded.process_pool()
            index = pool.shard_indices()[0]
            with pytest.raises(ProcessPoolError, match="unknown worker"):
                pool._request(index, "no-such-op")
            # The worker survives a protocol error and keeps serving.
            assert pool._request(index, "ping") == "pong"


class TestCacheAndMetrics:
    def test_cache_info_rolls_up_remote_workers(self):
        database = small_tuple_independent(31, count=12)
        with ShardedDatabase(database, 3, executor="processes") as sharded:
            sharded.coordinator().rank_matrix(K)
            info = sharded.cache_info()
            assert isinstance(info, CacheInfo)
            pool_info = sharded.process_pool().cache_info()
            # Worker sessions memoized their layout + partials: the remote
            # roll-up is non-empty and adds into the database total.
            assert pool_info.misses > 0
            assert info.misses >= pool_info.misses

    def test_summary_cache_refetches_only_updated_shard(self):
        database = small_tuple_independent(8, count=12)
        with ShardedDatabase(database, 2, executor="processes") as sharded:
            pool = sharded.process_pool()
            pool.summaries(K)
            baseline = pool.stats().summaries
            pool.summaries(K)  # warm: no new exchange
            assert pool.stats().summaries == baseline
            key = sharded.keys()[0]
            sharded.update_tuple(key, probability=0.4)
            pool.summaries(K)
            # Exactly one shard (the owner) re-shipped its partials.
            assert pool.stats().summaries == baseline + 1

    def test_ipc_snapshot_delta(self):
        first = IpcSnapshot(commands=5, summaries=3, pipe_bytes=100)
        second = IpcSnapshot(commands=9, summaries=4, pipe_bytes=160)
        delta = second - first
        assert delta.commands == 4
        assert delta.summaries == 1
        assert delta.total_bytes == 60


class TestServingIntegration:
    def test_executor_mounts_pool_and_reports_ipc(self):
        async def run():
            database = random_tuple_independent_database(17, rng=5)
            reference = ShardedDatabase(database, 2)
            pooled = ShardedDatabase(database, 2, executor="processes")
            async with ServingExecutor(reference) as ref_ex, ServingExecutor(
                pooled
            ) as pool_ex:
                for kind in (
                    "mean_topk_symmetric_difference",
                    "mean_topk_footrule",
                ):
                    expected = await ref_ex.query(kind, k=K)
                    actual = await pool_ex.query(kind, k=K)
                    assert actual[0] == expected[0]
                    assert math.isclose(
                        actual[1], expected[1], abs_tol=TOLERANCE
                    )
                key = pooled.keys()[2]
                await ref_ex.update(key, probability=0.35)
                await pool_ex.update(key, probability=0.35)
                expected = await ref_ex.query(
                    "mean_topk_symmetric_difference", k=K
                )
                actual = await pool_ex.query(
                    "mean_topk_symmetric_difference", k=K
                )
                assert actual[0] == expected[0]
                snapshot = pool_ex.metrics()
                assert snapshot.ipc is not None
                assert snapshot.ipc.summaries > 0
                assert snapshot.updates == 1
                assert ref_ex.metrics().ipc is None
            # The executor owned the pool, so exit released the workers.
            assert pooled._pool is None or pooled._pool.closed
            pooled.close()

        asyncio.run(run())

    def test_traffic_replay_byte_identical_across_executors(self):
        async def replay(db):
            events = generate_traffic(
                db.keys(), 30, rng=99, update_ratio=0.2, k_choices=(3, 5)
            )
            signature = traffic_signature(events)
            async with ServingExecutor(db) as executor:
                results = await replay_traffic(executor, events)
            return signature, [
                repr(result) for result in results if result is not None
            ]

        async def run():
            database = random_tuple_independent_database(17, rng=23)
            threads_db = ShardedDatabase(database, 2)
            processes_db = ShardedDatabase(database, 2, executor="processes")
            threads_sig, threads_results = await replay(threads_db)
            processes_sig, processes_results = await replay(processes_db)
            # Same seed -> byte-identical streams AND byte-identical
            # replayed answers, regardless of executor mode.
            assert threads_sig == processes_sig
            assert threads_results == processes_results
            processes_db.close()

        asyncio.run(run())


class TestLifecycleAndConfig:
    def test_executor_argument_is_validated(self):
        database = small_tuple_independent(1, count=4)
        with pytest.raises(ModelError, match="executor"):
            ShardedDatabase(database, 2, executor="greenlets")
        plain = ShardedDatabase(database, 2)
        with pytest.raises(ModelError, match="processes"):
            plain.process_pool()

    def test_resolve_start_method_rejects_unknown(self):
        with pytest.raises(ProcessPoolError, match="unavailable"):
            resolve_start_method("not-a-method")
        assert resolve_start_method() in (
            "fork", "spawn", "forkserver"
        )

    def test_shm_mode_is_validated(self):
        database = small_tuple_independent(1, count=4)
        with pytest.raises(ProcessPoolError, match="shm"):
            ShardedDatabase(
                database,
                2,
                executor="processes",
                executor_options={"shm": "sometimes"},
            ).process_pool()

    def test_empty_shards_get_no_workers(self):
        database = small_tuple_independent(4, count=4)
        with ShardedDatabase(
            database, 8, executor="processes"
        ) as sharded:
            pool = sharded.process_pool()
            assert pool.worker_count() <= 4
            assert sharded.coordinator().shard_count == pool.worker_count()
            assert_rank_matrix_parity(
                QuerySession(database.tree),
                sharded.coordinator(),
                3,
            )
