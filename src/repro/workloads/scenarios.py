"""Named realistic scenarios used by the examples and benchmarks.

Each scenario returns a fully-built probabilistic database together with a
short description, mirroring the application domains the paper's introduction
cites (sensor networks, information retrieval / recommendation scores, and
information extraction).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.models.bid import BlockIndependentDatabase
from repro.models.tuple_independent import TupleIndependentDatabase
from repro.workloads.generators import RandomSource, _as_rng


@dataclass(frozen=True)
class Scenario:
    """A named workload: a database plus a human-readable description."""

    name: str
    description: str
    database: Union[TupleIndependentDatabase, BlockIndependentDatabase]


def sensor_network_scenario(
    sensor_count: int = 12,
    rng: RandomSource = 7,
) -> Scenario:
    """Noisy temperature sensors reporting uncertain readings.

    Every sensor surely exists but its reported reading (the score) is
    uncertain: each sensor has two or three candidate calibrated readings
    whose probabilities reflect calibration confidence.  This is the
    attribute-level uncertainty setting of Section 5.
    """
    rng = _as_rng(rng)
    blocks: List[Tuple[str, List[Tuple[float, float, float]]]] = []
    used_readings: set = set()
    for index in range(sensor_count):
        base = 15.0 + 20.0 * rng.random()
        alternative_count = rng.randint(2, 3)
        raw = [rng.random() + 0.2 for _ in range(alternative_count)]
        total = sum(raw)
        alternatives = []
        for j in range(alternative_count):
            reading = round(base + rng.gauss(0.0, 2.0), 3)
            while reading in used_readings:
                reading += 0.001
            used_readings.add(reading)
            alternatives.append((reading, reading, raw[j] / total))
        blocks.append((f"sensor{index + 1}", alternatives))
    database = BlockIndependentDatabase(blocks, name="sensor_network")
    return Scenario(
        name="sensor_network",
        description=(
            f"{sensor_count} temperature sensors with 2-3 candidate "
            "calibrated readings each (attribute-level uncertainty)"
        ),
        database=database,
    )


def movie_rating_scenario(
    movie_count: int = 10,
    rng: RandomSource = 11,
) -> Scenario:
    """Movies with uncertain relevance scores from a noisy recommender.

    Each movie appears with some probability (it may be filtered out by the
    recommender) and carries a relevance score; tuples are independent.
    """
    rng = _as_rng(rng)
    tuples = []
    used_scores: set = set()
    for index in range(movie_count):
        score = round(rng.uniform(1.0, 10.0), 3)
        while score in used_scores:
            score += 0.001
        used_scores.add(score)
        probability = round(rng.uniform(0.3, 1.0), 3)
        tuples.append((f"movie{index + 1}", score, score, probability))
    database = TupleIndependentDatabase(tuples, name="movie_ratings")
    return Scenario(
        name="movie_ratings",
        description=(
            f"{movie_count} movies with uncertain presence and relevance "
            "scores (tuple-level uncertainty)"
        ),
        database=database,
    )


def extraction_groupby_scenario(
    mention_count: int = 20,
    company_count: int = 4,
    rng: RandomSource = 13,
) -> Scenario:
    """Information-extraction mentions with uncertain company attribution.

    Every extracted mention surely refers to exactly one company, but which
    company is uncertain (attribute-level uncertainty); the analytical query
    of interest is the per-company mention count (Section 6.1).
    """
    rng = _as_rng(rng)
    companies = [f"company{index + 1}" for index in range(company_count)]
    blocks: List[Tuple[str, List[Tuple[str, float]]]] = []
    for index in range(mention_count):
        supported = rng.sample(companies, rng.randint(1, min(3, company_count)))
        raw = [rng.random() + 0.1 for _ in supported]
        total = sum(raw)
        alternatives = [
            (company, weight / total)
            for company, weight in zip(supported, raw)
        ]
        blocks.append((f"mention{index + 1}", alternatives))
    database = BlockIndependentDatabase(blocks, name="extraction_mentions")
    return Scenario(
        name="extraction_mentions",
        description=(
            f"{mention_count} extracted mentions attributed to one of "
            f"{company_count} companies with attribute-level uncertainty"
        ),
        database=database,
    )
