"""Top-k consensus under the Spearman footrule distance (Section 5.4).

With the location parameter ``ℓ = k + 1`` the footrule distance between
Top-k lists has the closed form quoted in Section 5.1; Figure 2 of the paper
rewrites its expectation against the random Top-k answer as

``E[F*(τ, τ_pw)] = C + Σ_t Σ_{i=1..k} δ(t = τ(i)) f(t, i)``

where, writing ``Υ1(t) = Σ_{i<=k} Pr(r(t)=i)``,
``Υ2(t) = Σ_{i<=k} i Pr(r(t)=i)`` and
``Υ3(t, i) = Σ_{j<=k} Pr(r(t)=j) |i-j| - i Pr(r(t) > k)``,

* ``C = (k+1) k + Σ_t ((k+1) Υ1(t) - Υ2(t))`` is independent of ``τ``, and
* ``f(t, i) = Υ3(t, i) + Υ2(t) - 2 (k+1) Υ1(t)``.

Choosing which tuple occupies which position to minimise ``Σ_i f(τ(i), i)``
is an assignment problem, solved exactly with the Hungarian algorithm.

.. note::
   The paper prints ``Υ3`` with ``+ i Pr(r(t) > k)``, but its own derivation
   in Figure 2 subtracts the ``Σ_i δ(t = τ(i)) i Pr(r(t) > k)`` term (a tuple
   of the candidate answer that falls *outside* the random Top-k contributes
   ``(k+1) - τ(t)``, whose ``-τ(t)`` part is this term).  The minus sign used
   here is the one that makes the decomposition agree with the brute-force
   expected distance; ``tests/test_topk_footrule.py`` verifies this equality
   by exhaustive enumeration.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.consensus.topk.common import (
    TopKAnswer,
    TreeOrStatistics,
    as_session,
    rank_matrix_view,
    validate_k,
)
from repro.exceptions import ConsensusError
from repro.matching import minimize_cost_assignment


class FootruleStatistics:
    """The Υ1 / Υ2 / Υ3 statistics of Section 5.4 for one database.

    Instances are memoized per ``k`` on the query session
    (:meth:`repro.session.QuerySession.footrule_statistics`), so evaluating
    several candidate answers reuses the same Υ tables.  The whole
    ``n × k`` cost table ``f(t, i)`` is produced by one backend kernel
    (:meth:`~repro.engine.backends.Backend.footrule_cost_matrix`: a matrix
    product of the truncated rank matrix against the ``k × k`` ``|i-j|``
    grid plus two rank-one updates) instead of the per-entry Υ3 loop.
    """

    def __init__(self, source: TreeOrStatistics, k: int) -> None:
        self._session = as_session(source)
        self._k = validate_k(self._session, k)
        self._matrix = rank_matrix_view(self._session, k)
        # Υ1 and Υ2 for all tuples in two weighted row sums.
        self._upsilon1 = self._matrix.membership()
        self._upsilon2 = self._matrix.weighted_sums(
            [float(i) for i in range(1, k + 1)]
        )
        backend = self._matrix.backend
        self._cost = backend.footrule_cost_matrix(self._matrix.native, k)
        self._row_index = {
            key: row for row, key in enumerate(self._matrix.keys())
        }

    @property
    def k(self) -> int:
        """The answer size."""
        return self._k

    def keys(self) -> List[Hashable]:
        """The tuple keys of the database, aligned with :meth:`cost_rows`.

        ``keys()[column]`` is the tuple of column ``column`` of the cost
        table (the rank-matrix row order).
        """
        return self._matrix.keys()

    def upsilon1(self, key: Hashable) -> float:
        """``Υ1(t) = Pr(r(t) <= k)``."""
        return self._upsilon1[key]

    def upsilon2(self, key: Hashable) -> float:
        """``Υ2(t) = Σ_{i<=k} i Pr(r(t) = i)``."""
        return self._upsilon2[key]

    def upsilon3(self, key: Hashable, position: int) -> float:
        """``Υ3(t, i) = Σ_{j<=k} Pr(r(t)=j) |i-j| - i Pr(r(t) > k)``.

        See the module docstring for the sign of the second term.
        Recovered from the precomputed cost table via
        ``Υ3(t, i) = f(t, i) - Υ2(t) + 2 (k+1) Υ1(t)``.
        """
        return (
            self.position_cost(key, position)
            - self.upsilon2(key)
            + 2.0 * (self._k + 1.0) * self.upsilon1(key)
        )

    def constant_term(self) -> float:
        """The ``τ``-independent constant ``C`` of Figure 2."""
        k = self._k
        return (k + 1.0) * k + sum(
            (k + 1.0) * self.upsilon1(key) - self.upsilon2(key)
            for key in self.keys()
        )

    def position_cost(self, key: Hashable, position: int) -> float:
        """``f(t, i) = Υ3(t, i) + Υ2(t) - 2 (k+1) Υ1(t)``."""
        if not 1 <= position <= self._k:
            raise ConsensusError(
                f"position must lie in 1..{self._k}, got {position}"
            )
        return self._matrix.backend.matrix_cell(
            self._cost, self._row_index[key], position - 1
        )

    def cost_rows(self) -> List[List[float]]:
        """The ``k × n`` assignment cost table (rows = positions).

        ``cost_rows()[i - 1][column]`` is ``f(t, i)`` for the tuple at
        ``keys()[column]`` -- the orientation
        :func:`~repro.matching.minimize_cost_assignment` needs
        (``rows <= cols``).
        """
        backend = self._matrix.backend
        return backend.matrix_to_lists(backend.transpose(self._cost))


def expected_topk_footrule_distance(
    source: TreeOrStatistics, answer: Sequence[Hashable], k: int
) -> float:
    """Expected footrule distance between ``answer`` and the random Top-k.

    Evaluates the Figure 2 decomposition ``C + Σ_i f(τ(i), i)`` exactly.
    """
    footrule = as_session(source).footrule_statistics(k)
    answer = tuple(answer)
    if len(answer) != k:
        raise ConsensusError(
            f"the candidate answer must have exactly k = {k} items"
        )
    if len(set(answer)) != k:
        raise ConsensusError("the candidate answer contains duplicates")
    total = footrule.constant_term()
    for position, key in enumerate(answer, start=1):
        total += footrule.position_cost(key, position)
    return total


def mean_topk_footrule(
    source: TreeOrStatistics, k: int
) -> Tuple[TopKAnswer, float]:
    """The exact mean Top-k answer under the footrule distance ``F^(k+1)``.

    Solved as a minimum-cost assignment of tuples to the ``k`` positions with
    cost ``f(t, i)``; returns the optimal answer and its expected distance.
    """
    session = as_session(source)
    footrule = session.footrule_statistics(k)
    keys = footrule.keys()
    assignment, _ = minimize_cost_assignment(footrule.cost_rows())
    answer = tuple(keys[column] for column in assignment)
    return answer, expected_topk_footrule_distance(session, answer, k)
