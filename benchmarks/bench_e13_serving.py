"""Experiment E13: sharded serving layer throughput and merge overhead.

Three cases over the scaled movie-ratings scenario (tuple-independent,
``n ≈ 10⁴`` at full size):

* **E13a -- throughput vs shard count.**  A mixed read/update traffic
  stream (popular Top-k queries + single-tuple probability updates) is
  replayed through the asyncio :class:`~repro.serving.ServingExecutor` at
  shard counts 1/2/4/8.  Updates invalidate only the owning shard, so the
  unchanged shards' memoized partial summaries keep serving the cross-shard
  merge: aggregate throughput must scale (the acceptance bar is >= 2x going
  1 -> 4 shards on the NumPy backend at n >= 10^4).
* **E13b -- coalesced vs naive dispatch.**  The same bursty stream with
  request coalescing on and off.
* **E13c -- merge-overhead microbench.**  Cold merged rank matrix at the
  coordinator vs the unsharded backend sweep, plus the per-shard summary
  build time the merge amortizes.

Set ``REPRO_BENCH_SMOKE=1`` to shrink every case to seconds (the CI smoke
leg).  JSON results record the active backend and the traffic seed.
"""

from __future__ import annotations

import asyncio
import os
import time

from _harness import report
from repro.models import ShardedDatabase
from repro.serving import ServingExecutor
from repro.session import QuerySession
from repro.workloads.scenarios import movie_rating_scenario
from repro.workloads.traffic import generate_traffic, replay_traffic

SEED = 20260730
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SCALE = 40.0 if SMOKE else 1200.0  # n = 400 smoke / 12_000 full
SHARD_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
EVENT_COUNT = 24 if SMOKE else 50
ROUNDS = 1 if SMOKE else 3  # median-of-ROUNDS replays per shard count
CONCURRENCY = 8
K = 10


def _database():
    return movie_rating_scenario(scale=SCALE).database


def _traffic(keys, update_ratio=0.4):
    return generate_traffic(
        keys,
        EVENT_COUNT,
        rng=SEED,
        update_ratio=update_ratio,
        k_choices=(K,),
        popular_pool=6,
    )


def _replay(sharded, events, **executor_options):
    async def run():
        async with ServingExecutor(sharded, **executor_options) as executor:
            # One warm query excludes one-time construction from the
            # steady-state throughput measurement.
            await executor.query("top_k_membership", k=K)
            start = time.perf_counter()
            await replay_traffic(executor, events, concurrency=CONCURRENCY)
            elapsed = time.perf_counter() - start
            return elapsed, executor.metrics()

    return asyncio.run(run())


def test_e13a_throughput_vs_shard_count(benchmark):
    database = _database()
    events = _traffic(database.tree.keys())
    update_count = sum(1 for event in events if event.is_update)
    rows = []
    single_shard_rate = None
    for shard_count in SHARD_COUNTS:
        # Median of a few replays: each replay rebuilds the sharded
        # database, so every round pays the same cold caches.
        runs = sorted(
            (
                _replay(
                    ShardedDatabase(database, shard_count, partitioner="hash"),
                    events,
                )
                for _ in range(ROUNDS)
            ),
            key=lambda run: run[0],
        )
        elapsed, metrics = runs[len(runs) // 2]
        rate = len(events) / elapsed
        if single_shard_rate is None:
            single_shard_rate = rate
        rows.append(
            (
                shard_count,
                len(database.tree.keys()),
                elapsed,
                rate,
                rate / single_shard_rate,
                metrics.latency_p50 * 1000.0,
                metrics.latency_p95 * 1000.0,
            )
        )
    speedup_4 = next(
        (row[4] for row in rows if row[0] == 4), rows[-1][4]
    )
    report(
        "E13a",
        "Serving throughput vs shard count (mixed read/update traffic)",
        ("shards", "tuples", "wall (s)", "events/s", "speedup vs 1",
         "p50 (ms)", "p95 (ms)"),
        rows,
        notes=(
            f"seed={SEED}; {len(events)} events ({update_count} updates), "
            f"concurrency={CONCURRENCY}, k={K}.  Updates rebuild and "
            "invalidate only the owning shard; the merge re-convolves the "
            f"unchanged shards' warm partials.  1 -> 4 shard speedup: "
            f"{speedup_4:.2f}x."
        ),
    )
    sharded = ShardedDatabase(database, SHARD_COUNTS[-1], partitioner="hash")
    benchmark.pedantic(
        lambda: _replay(sharded, events), rounds=1, iterations=1
    )


def test_e13b_coalesced_vs_naive_dispatch(benchmark):
    database = _database()
    # A bursty, read-heavy stream of popular queries: the regime request
    # coalescing targets (identical queries in flight concurrently).
    events = _traffic(database.tree.keys(), update_ratio=0.1)
    rows = []
    for label, options in (
        ("coalesced", dict(coalesce=True)),
        ("naive", dict(coalesce=False)),
    ):
        sharded = ShardedDatabase(database, 4, partitioner="hash")
        elapsed, metrics = _replay(sharded, events, **options)
        rows.append(
            (
                label,
                elapsed,
                len(events) / elapsed,
                metrics.queries,
                metrics.coalesced,
                metrics.mean_batch_size,
                metrics.latency_p95 * 1000.0,
            )
        )
    report(
        "E13b",
        "Request coalescing vs naive dispatch (4 shards, bursty reads)",
        ("dispatch", "wall (s)", "events/s", "executed", "coalesced",
         "mean batch", "p95 (ms)"),
        rows,
        notes=(
            f"seed={SEED}.  Coalesced dispatch answers identical "
            "concurrent queries from one in-flight computation; naive "
            "dispatch executes each (still hitting the coordinator's "
            "memoized artifacts once warm)."
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e13c_merge_overhead_microbench(benchmark):
    database = _database()
    keys = database.tree.keys()
    rows = []
    start = time.perf_counter()
    unsharded = QuerySession(database.tree)
    unsharded.rank_matrix(K)
    unsharded_seconds = time.perf_counter() - start
    rows.append(("unsharded sweep", 1, unsharded_seconds, 1.0))
    for shard_count in SHARD_COUNTS[1:]:
        sharded = ShardedDatabase(database, shard_count, partitioner="hash")
        coordinator = sharded.coordinator()
        start = time.perf_counter()
        for session in sharded.sessions():
            session.partial_rank_summary(K)
        summaries_seconds = time.perf_counter() - start
        start = time.perf_counter()
        coordinator.rank_matrix(K)
        merge_seconds = time.perf_counter() - start
        rows.append(
            (
                f"summaries ({shard_count} shards)",
                shard_count,
                summaries_seconds,
                summaries_seconds / unsharded_seconds,
            )
        )
        rows.append(
            (
                f"merge ({shard_count} shards)",
                shard_count,
                merge_seconds,
                merge_seconds / unsharded_seconds,
            )
        )
    report(
        "E13c",
        f"Cross-shard merge overhead, n = {len(keys)}, k = {K}",
        ("stage", "shards", "seconds", "vs unsharded sweep"),
        rows,
        notes=(
            f"seed={SEED}.  'summaries' builds every shard's truncated "
            "prefix-polynomial table (the part a warm serving path "
            "amortizes across queries and re-pays only for updated "
            "shards); 'merge' gathers and convolves the partials into the "
            "exact global rank matrix."
        ),
    )
    benchmark.pedantic(
        lambda: ShardedDatabase(database, 4).coordinator().rank_matrix(K),
        rounds=1,
        iterations=1,
    )
