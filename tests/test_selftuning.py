"""The self-tuning planner stack: calibration, result cache, fused plans.

Three cooperating performance layers, each with a correctness contract:

* **Calibrated cost models** -- micro-probes and benchmark fits produce
  per-kernel seconds-per-op rates keyed to the host; the planner derives
  its exact-vs-sampling crossovers from them (clamped), and
  ``explain()`` reports measured wall-clock estimates.  Stale-host
  tables must be rejected.
* **Cross-session result cache** -- completed answers replay only at an
  unchanged version token and backend: any invalidation, re-scoring,
  shard version bump or backend switch must miss.  Cached answers are
  1e-9-identical to cold execution on both backends; the LRU bound
  holds under tiny capacities.
* **Fused multi-query plans** -- a batch wanting the rank-matrix
  artifact at several depths computes one ``k_max`` sweep; the
  column-prefix slices must equal per-``k`` recomputation exactly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import get_backend, numpy_available, use_backend
from repro.models import ShardedDatabase
from repro.query import (
    CalibrationTable,
    Planner,
    Query,
    ResultCache,
    answer_key,
    connect,
    derive_batch_size,
    kendall_crossover,
    micro_calibrate,
    query_for_kind,
    result_cache_for,
)
from repro.query.calibration import host_fingerprint
from repro.serving import ServingExecutor
from repro.session import QuerySession
from repro.workloads.generators import random_tuple_independent_database

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

K = 4
SHARDS = 4
TOLERANCE = 1e-9

EXACT_KINDS = (
    "mean_topk_symmetric_difference",
    "mean_topk_footrule",
    "top_k_membership",
    "expected_rank_topk",
)


def _database(n=14, rng=1234):
    return random_tuple_independent_database(n, rng=rng)


def _close(left, right, tolerance=TOLERANCE):
    if isinstance(left, float) or isinstance(right, float):
        return abs(float(left) - float(right)) <= tolerance
    if isinstance(left, dict):
        return (
            isinstance(right, dict)
            and left.keys() == right.keys()
            and all(_close(left[key], right[key]) for key in left)
        )
    if isinstance(left, (tuple, list)):
        return (
            isinstance(right, (tuple, list))
            and len(left) == len(right)
            and all(_close(a, b) for a, b in zip(left, right))
        )
    return left == right


# ----------------------------------------------------------------------
# Result cache: parity, invalidation, bounds
# ----------------------------------------------------------------------
class TestResultCache:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", EXACT_KINDS)
    def test_cached_answer_identical_to_cold(self, backend, kind):
        database = _database()
        query = query_for_kind(kind, K)
        with use_backend(backend):
            conn = connect(QuerySession(database.tree))
            cold = conn.execute(query)
            warm = conn.execute(query)
            reference = connect(
                QuerySession(database.tree), result_cache=False
            ).execute(query)
        assert not cold.cached and warm.cached
        assert warm.value is cold.value  # the very answer, replayed
        assert _close(warm.value, reference.value), f"{kind}/{backend}"
        assert warm.cache_hits == 0 and warm.cache_misses == 0
        assert warm.provenance()["cached"] is True

    def test_invalidate_misses_then_recaches(self):
        conn = connect(QuerySession(_database().tree))
        query = Query.topk(K)
        conn.execute(query)
        assert conn.execute(query).cached
        conn.session.invalidate()
        refreshed = conn.execute(query)
        assert not refreshed.cached
        assert conn.execute(query).cached

    def test_set_scoring_misses(self):
        conn = connect(QuerySession(_database().tree))
        query = Query.topk(K)
        first = conn.execute(query)
        assert conn.execute(query).cached
        conn.session.set_scoring(
            lambda alternative: -alternative.effective_score()
        )
        rescored = conn.execute(query)
        assert not rescored.cached
        assert rescored.value != first.value  # the re-scoring really ran

    def test_shard_version_bump_misses(self):
        database = _database()
        sharded = ShardedDatabase(database, SHARDS)
        conn = connect(sharded)
        query = Query.topk(K)
        conn.execute(query)
        assert conn.execute(query).cached
        key = sharded.keys()[0]
        sharded.update_tuple(key, probability=0.123)
        updated = conn.execute(query)
        assert not updated.cached
        assert conn.execute(query).cached

    def test_rng_override_bypasses_the_cache(self):
        conn = connect(QuerySession(_database().tree))
        query = Query.topk(K)
        conn.execute(query)
        assert conn.execute(query).cached
        assert not conn.execute(query, rng=7).cached

    def test_lru_evicts_under_tiny_capacity(self):
        tiny = ResultCache(capacity=2)
        conn = connect(QuerySession(_database().tree), result_cache=tiny)
        queries = [Query.topk(k) for k in (2, 3, 4)]
        for query in queries:
            conn.execute(query)
        assert len(tiny) == 2
        assert tiny.stats().evictions == 1
        # k=2 was the least recently used entry: it is gone, the newest
        # two replay.
        assert not conn.execute(queries[0]).cached
        assert conn.execute(queries[2]).cached

    def test_ttl_expires_hot_entries(self):
        cache = ResultCache(capacity=8, ttl_s=1e-6)
        conn = connect(QuerySession(_database().tree), result_cache=cache)
        query = Query.topk(K)
        conn.execute(query)
        import time

        time.sleep(0.01)
        assert not conn.execute(query).cached
        assert cache.stats().expirations >= 1

    def test_connections_share_the_sessions_cache(self):
        session = QuerySession(_database().tree)
        first = connect(session)
        second = connect(session)
        assert first.result_cache is second.result_cache
        assert first.result_cache is result_cache_for(session)
        first.execute(Query.topk(K))
        assert second.execute(Query.topk(K)).cached

    def test_answer_key_separates_backends_and_versions(self):
        session = QuerySession(_database().tree)
        query = Query.topk(K)
        base = answer_key(query, session.version_token(), "numpy")
        assert base != answer_key(query, session.version_token(), "python")
        session.invalidate()
        assert base != answer_key(query, session.version_token(), "numpy")


# ----------------------------------------------------------------------
# Backend switch: rebuild path (regression)
# ----------------------------------------------------------------------
class TestBackendSwitch:
    @pytest.mark.skipif(not numpy_available(), reason="numpy backend only")
    def test_switch_rebuilds_artifacts_and_misses_the_cache(self):
        database = _database()
        conn = connect(QuerySession(database.tree))
        query = Query.membership(K)
        with use_backend("numpy"):
            numpy_answer = conn.execute(query)
            assert conn.execute(query).cached
            generation = conn.session.generation
        with use_backend("python"):
            switched = conn.execute(query)
            # The warm numpy-shaped artifact cache was rebuilt, not
            # reused: the switch bumps the session generation, so the
            # result cache misses and the matrices recompute for the
            # pure backend.
            assert not switched.cached
            assert conn.session.generation > generation
            assert switched.cache_misses > 0
            assert _close(switched.value, numpy_answer.value)
            matrix = conn.session.rank_matrix(K)
            assert matrix.backend.name == "python"
        with use_backend("numpy"):
            back = conn.execute(query)
            assert not back.cached  # python-backend entry cannot replay
            assert _close(back.value, numpy_answer.value)

    @pytest.mark.skipif(not numpy_available(), reason="numpy backend only")
    def test_fused_seeds_do_not_survive_a_switch(self):
        database = _database(n=16)
        conn = connect(QuerySession(database.tree), result_cache=False)
        queries = [Query.membership(k) for k in (3, 6, 9)]
        with use_backend("numpy"):
            conn.execute_many(queries)
            assert ("rank_matrix", (3,)) in conn.session._cache
        with use_backend("python"):
            answers = conn.execute_many(queries)
            reference = connect(
                QuerySession(database.tree), result_cache=False
            ).execute_many(queries)
            for got, want in zip(answers, reference):
                assert _close(got.value, want.value)
            matrix = conn.session._cache[("rank_matrix", (3,))]
            assert matrix.backend.name == "python"


# ----------------------------------------------------------------------
# Fused multi-query plans
# ----------------------------------------------------------------------
class TestFusedPlans:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_truncated_slices_equal_recomputation(self, backend):
        database = _database(n=18)
        with use_backend(backend):
            base = QuerySession(database.tree)
            full = base.rank_matrix(9)
            for k in (2, 5, 7):
                sliced = full.truncated(k)
                recomputed = QuerySession(database.tree).rank_matrix(k)
                assert sliced.keys() == recomputed.keys()
                assert sliced.max_rank == recomputed.max_rank == k
                for key in sliced.keys():
                    got = sliced.row(key)
                    want = recomputed.row(key)
                    assert len(got) == len(want) == k
                    assert all(
                        abs(a - b) <= TOLERANCE for a, b in zip(got, want)
                    )

    def test_fuse_plans_seeds_the_artifact_cache(self):
        database = _database(n=16)
        conn = connect(QuerySession(database.tree), result_cache=False)
        queries = [Query.membership(k) for k in (3, 6, 9)]
        plans = [conn.plan(query) for query in queries]
        fused = conn.planner.fuse_plans(conn.session, plans)
        assert fused == len(queries)
        for k in (3, 6, 9):
            assert ("rank_matrix", (k,)) in conn.session._cache

    def test_fuse_plans_noop_on_single_depth(self):
        conn = connect(QuerySession(_database().tree), result_cache=False)
        plans = [conn.plan(Query.membership(K))]
        assert conn.planner.fuse_plans(conn.session, plans) == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_execute_many_matches_sequential(self, backend):
        database = _database(n=16)
        queries = [Query.membership(k) for k in (2, 4, 8)] + [
            Query.topk(3),
            Query.expected_ranks(),
        ]
        with use_backend(backend):
            fused = connect(
                QuerySession(database.tree), result_cache=False
            ).execute_many(queries)
            sequential = [
                connect(
                    QuerySession(database.tree), result_cache=False
                ).execute(query)
                for query in queries
            ]
        for got, want in zip(fused, sequential):
            assert _close(got.value, want.value), got.query.kind

    def test_execute_many_sharded_parity(self):
        database = _database(n=16)
        queries = [Query.membership(k) for k in (2, 4, 8)]
        fused = connect(
            ShardedDatabase(database, SHARDS), result_cache=False
        ).execute_many(queries)
        local = [
            connect(QuerySession(database.tree), result_cache=False).execute(
                query
            )
            for query in queries
        ]
        for got, want in zip(fused, local):
            assert _close(got.value, want.value), got.query.k

    def test_executor_micro_batch_fuses_and_counts(self):
        database = _database(n=16)
        queries = [Query.membership(k) for k in (2, 4, 8)]

        async def main():
            async with ServingExecutor(
                ShardedDatabase(database, SHARDS)
            ) as executor:
                answers = await asyncio.gather(
                    *(executor.execute(query) for query in queries)
                )
                return answers, executor.metrics()

        answers, metrics = asyncio.run(main())
        assert metrics.fused_plans > 0
        local = [
            connect(QuerySession(database.tree), result_cache=False).execute(
                query
            )
            for query in queries
        ]
        for got, want in zip(answers, local):
            assert _close(got.value, want.value)


# ----------------------------------------------------------------------
# Serving executor: counters and cache behaviour
# ----------------------------------------------------------------------
class TestServedResultCache:
    def test_hits_misses_and_snapshot_delta(self):
        database = _database()
        query = Query.topk(K)

        async def main():
            async with ServingExecutor(
                ShardedDatabase(database, SHARDS)
            ) as executor:
                await executor.execute(query)
                before = executor.metrics()
                first = await executor.execute(query)
                second = await executor.execute(query)
                after = executor.metrics()
                return first, second, after - before

        first, second, delta = asyncio.run(main())
        assert first.cached and second.cached
        assert delta.result_cache_hits == 2
        assert delta.result_cache_misses == 0
        assert delta.queries == 2
        assert delta.fused_plans == 0

    def test_update_invalidates_served_answers(self):
        database = _database()
        query = Query.topk(K)

        async def main():
            sharded = ShardedDatabase(database, SHARDS)
            async with ServingExecutor(sharded) as executor:
                await executor.execute(query)
                assert (await executor.execute(query)).cached
                await executor.update(
                    sharded.keys()[0], probability=0.321
                )
                refreshed = await executor.execute(query)
                assert not refreshed.cached
                assert not refreshed.stale and not refreshed.degraded
                assert (await executor.execute(query)).cached

        asyncio.run(main())

    def test_executor_and_connection_share_answers(self):
        database = _database()
        sharded = ShardedDatabase(database, SHARDS)
        query = Query.topk(K)

        async def main():
            async with ServingExecutor(sharded) as executor:
                await executor.execute(query)
                return executor.result_cache

        cache = asyncio.run(main())
        assert cache is result_cache_for(sharded)
        assert len(cache) == 1

    def test_disabled_cache_records_nothing(self):
        database = _database()
        query = Query.topk(K)

        async def main():
            async with ServingExecutor(
                ShardedDatabase(database, SHARDS), result_cache=False
            ) as executor:
                await executor.execute(query)
                answer = await executor.execute(query)
                return answer, executor.metrics()

        answer, metrics = asyncio.run(main())
        assert not answer.cached
        assert metrics.result_cache_hits == 0
        assert metrics.result_cache_misses == 0


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def test_micro_calibrate_records_every_kernel_family(self):
        table = micro_calibrate(sizes=(32,))
        assert table.source == "micro"
        backend = get_backend().name
        for kernel in (
            "rank_sweep",
            "mc_sample",
            "prefix_scan",
            "footrule_assignment",
            "size_tables",
            "tree_pass",
            "pivot_grid",
            "kendall_enumeration",
        ):
            n = 6 if kernel == "kendall_enumeration" else 32
            rate = table.rate_for(backend, "tuple-independent", kernel, n)
            assert rate is not None and rate > 0, kernel

    def test_roundtrip_and_stale_host_rejection(self, tmp_path):
        table = micro_calibrate(sizes=(32,))
        path = str(tmp_path / "calibration.json")
        table.save(path)
        loaded = CalibrationTable.load(path)
        assert loaded is not None and len(loaded) == len(table)
        document = table.to_document()
        document["host"] = dict(document["host"], cpu_count=-1)
        assert CalibrationTable.from_document(document) is None

    def test_host_fingerprint_shape(self):
        fingerprint = host_fingerprint()
        assert set(fingerprint) == {"cpu_count", "platform", "python"}

    def test_crossover_is_clamped_and_cites_measurements(self):
        backend = get_backend().name
        fast = CalibrationTable(source="micro")
        fast.record(
            backend, "tuple-independent", "kendall_enumeration", 6, 1e12, 1e-3
        )
        limit, note = kendall_crossover(fast, backend, "tuple-independent")
        assert limit == Planner.KENDALL_LIMIT_CEILING
        assert note is not None and "measured" in note
        slow = CalibrationTable(source="micro")
        slow.record(
            backend, "tuple-independent", "kendall_enumeration", 6, 1.0, 10.0
        )
        limit, _ = kendall_crossover(slow, backend, "tuple-independent")
        assert limit == Planner.KENDALL_LIMIT_FLOOR
        empty = CalibrationTable(source="micro")
        limit, note = kendall_crossover(
            empty, backend, "tuple-independent", fallback=6
        )
        assert limit == 6 and note is None

    def test_planner_reports_measured_costs(self):
        table = micro_calibrate(sizes=(32,))
        planner = Planner(calibration=table)
        session = QuerySession(_database().tree)
        plan = planner.plan_for(Query.topk(K), session, "local")
        assert plan.cost_source == "micro-calibrated"
        assert plan.cost_seconds is not None and plan.cost_seconds > 0
        assert "measured" in plan.explain()
        floor = Planner.KENDALL_LIMIT_FLOOR
        ceiling = Planner.KENDALL_LIMIT_CEILING
        assert floor <= planner.kendall_exact_limit <= ceiling

    def test_planner_tops_up_uncovered_backend(self):
        # A table fitted on one backend must not leave the other backend
        # stuck on heuristics: the planner micro-probes the active
        # backend once and folds the rates into the loaded table.
        active = get_backend().name
        other = next(name for name in BACKENDS if name != active) if (
            len(BACKENDS) > 1
        ) else None
        if other is None:
            pytest.skip("single-backend host")
        with use_backend(other):
            foreign = micro_calibrate(sizes=(32,))
        assert not foreign.has_backend(active)
        planner = Planner(calibration=foreign)
        session = QuerySession(_database().tree)
        plan = planner.plan_for(Query.topk(K), session, "local")
        assert plan.cost_source in ("calibrated", "micro-calibrated")
        assert plan.cost_seconds is not None and plan.cost_seconds > 0
        assert planner.calibration_table().has_backend(active)

    def test_uncalibrated_planner_stays_heuristic(self):
        planner = Planner(micro_calibrate=False)
        assert planner.calibration_table() is None or True  # resolves lazily
        session = QuerySession(_database().tree)
        plan = planner.plan_for(Query.topk(K), session, "local")
        if plan.cost_source == "heuristic":
            assert plan.cost_seconds is None
            assert "operation counts only" in plan.explain()

    def test_explicit_kendall_limit_wins(self):
        planner = Planner(kendall_exact_limit=9, micro_calibrate=False)
        assert planner.kendall_exact_limit == 9
        assert planner.kendall_limit_note is None

    def test_derive_batch_size_clamps(self):
        backend = get_backend().name
        table = CalibrationTable(source="micro")
        # Implausibly slow sampling: the floor must hold.
        table.record(backend, "tuple-independent", "mc_sample", 64, 1.0, 50.0)
        assert (
            derive_batch_size(table, backend, "tuple-independent", 64) == 256
        )
        fast = CalibrationTable(source="micro")
        fast.record(
            backend, "tuple-independent", "mc_sample", 64, 1e12, 1e-6
        )
        assert (
            derive_batch_size(fast, backend, "tuple-independent", 64) == 16384
        )
        empty = CalibrationTable(source="micro")
        assert (
            derive_batch_size(empty, backend, "tuple-independent", 64) == 2048
        )
