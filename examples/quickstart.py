#!/usr/bin/env python3
"""Quickstart: consensus answers on a tiny probabilistic database.

This walk-through builds the running example of the paper -- a small
block-independent disjoint (BID) relation with both tuple-level and
attribute-level uncertainty -- and computes every flavour of consensus answer
the paper defines through the declarative query API:

* the mean / median consensus *world* under the symmetric difference and
  Jaccard distances (Section 4),
* the mean / median *Top-k* answers under the symmetric difference,
  intersection and Spearman footrule metrics (Section 5), and
* the consensus group-by count and clustering answers (Section 6).

Every query goes through one ``repro.connect(...)`` facade; the planner
matches it against the paper's hardness map and picks the execution path
(see ``examples/query_api.py`` for ``explain()`` output).

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    BlockIndependentDatabase,
    GroupByCountConsensus,
    Query,
    connect,
    consensus_clustering,
)


def build_database() -> BlockIndependentDatabase:
    """A five-tuple BID relation with scores (higher is better)."""
    return BlockIndependentDatabase(
        {
            # key: [(value/score, probability), ...]  -- alternatives of one
            # tuple are mutually exclusive, different tuples are independent.
            "paper_a": [(92.0, 0.6), (45.0, 0.4)],
            "paper_b": [(88.0, 1.0)],
            "paper_c": [(75.0, 0.7)],
            "paper_d": [(64.0, 0.9)],
            "paper_e": [(50.0, 0.5)],
        },
        name="review_scores",
    )


def section(title: str) -> None:
    print()
    print(title)
    print("-" * len(title))


def main() -> None:
    database = build_database()
    connection = connect(database)

    section("The probabilistic database")
    print(database)
    for key, probability in database.presence_probabilities().items():
        print(f"  {key}: present with probability {probability:.2f}")
    print(f"  expected number of tuples: {database.expected_size():.2f}")

    section("Consensus worlds (Section 4)")
    mean = connection.execute(Query.set_consensus())
    print(f"  mean world under symmetric difference "
          f"({len(mean.answer)} tuples, "
          f"expected distance {mean.expected_distance:.3f}):")
    for alternative in sorted(mean.answer, key=lambda a: str(a.key)):
        print(f"    {alternative}")
    median = connection.execute(Query.set_consensus(statistic="median"))
    print(f"  median world expected distance: "
          f"{median.expected_distance:.3f}")
    jaccard = connection.execute(Query.jaccard())
    print(f"  mean world under Jaccard distance has "
          f"{len(jaccard.answer)} tuples "
          f"(expected distance {jaccard.expected_distance:.3f})")

    section("Consensus Top-k answers (Section 5), k = 3")
    k = 3
    for name, query in {
        "symmetric difference (mean)": Query.topk(k),
        "symmetric difference (median)": Query.topk(k).median(),
        "intersection metric (mean)": Query.topk(k).distance("intersection"),
        "Spearman footrule (mean)": Query.topk(k).distance("footrule"),
    }.items():
        result = connection.execute(query)
        print(f"  {name:34s}: {', '.join(map(str, result.answer))}"
              f"   (expected distance {result.expected_distance:.3f})")

    section("Consensus group-by count answer (Section 6.1)")
    groups = BlockIndependentDatabase(
        {
            "m1": [("databases", 0.8), ("theory", 0.2)],
            "m2": [("databases", 0.5), ("systems", 0.5)],
            "m3": [("theory", 1.0)],
            "m4": [("systems", 0.6), ("databases", 0.4)],
        },
        name="paper_topics",
    )
    aggregate = GroupByCountConsensus.from_bid_tree(groups.tree)
    print(f"  groups: {aggregate.groups}")
    print(f"  mean answer (expected counts): "
          f"{tuple(round(x, 2) for x in aggregate.mean_answer())}")
    median_counts, median_cost = aggregate.median_answer_approximation()
    print(f"  median answer (closest possible counts): {median_counts} "
          f"(expected squared distance {median_cost:.3f})")

    section("Consensus clustering (Section 6.2)")
    clustering, value = consensus_clustering(groups.tree)
    pretty = [
        "{" + ", ".join(sorted(map(str, cluster))) + "}" for cluster in clustering
    ]
    print(f"  clusters: {', '.join(sorted(pretty))}")
    print(f"  expected pairwise disagreements: {value:.3f}")


if __name__ == "__main__":
    main()
