"""The ``connect()`` facade: one connection type over every deployment.

``repro.connect(...)`` accepts anything that holds a probabilistic
database -- a convenience model, a bare and/xor tree, rank statistics, a
(sharded) query session, a :class:`~repro.models.sharded.ShardedDatabase`
or an async :class:`~repro.serving.ServingExecutor` -- and returns one
:class:`Connection` through which every declarative
:class:`~repro.query.ConsensusQuery` runs.  The connection resolves the
deployment once (``local`` / ``sharded`` / ``served``), holds the warm
session behind it, and delegates route selection to the hardness-aware
:class:`~repro.query.Planner`.

>>> import repro
>>> from repro import Query
>>> connection = repro.connect(database)          # doctest: +SKIP
>>> answer = connection.execute(Query.topk(k=10)) # doctest: +SKIP
>>> print(connection.explain(Query.topk(k=10).distance("kendall")))
...                                               # doctest: +SKIP
"""

from __future__ import annotations

from typing import Any, Optional

from repro.exceptions import PlanningError
from repro.query.answers import QueryAnswer
from repro.query.builder import ConsensusQuery
from repro.query.plan import ExecutionPlan
from repro.query.planner import DEFAULT_PLANNER, Planner, resolve_session
from repro.session import CacheInfo, QuerySession


class Connection:
    """One handle over a local, sharded or served consensus database.

    Obtain instances through :func:`connect`.  All three deployments
    expose the same synchronous :meth:`execute` (served connections answer
    directly from the executor's coordinator session, sharing its warm
    caches); served connections additionally support :meth:`execute_async`,
    which routes through the executor's coalescing/batching machinery and
    must be awaited inside its event loop.
    """

    def __init__(
        self,
        session: QuerySession,
        deployment: str,
        executor: Optional[Any] = None,
        planner: Optional[Planner] = None,
    ) -> None:
        self._session = session
        self._deployment = deployment
        self._executor = executor
        self._planner = planner if planner is not None else DEFAULT_PLANNER

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> QuerySession:
        """The (coordinator) session answering this connection's queries."""
        return self._session

    @property
    def deployment(self) -> str:
        """``local``, ``sharded`` or ``served``."""
        return self._deployment

    @property
    def executor(self) -> Optional[Any]:
        """The serving executor behind a ``served`` connection (else None)."""
        return self._executor

    @property
    def planner(self) -> Planner:
        """The planner choosing this connection's execution paths."""
        return self._planner

    def keys(self) -> list:
        """The tuple keys of the connected database."""
        return self._session.keys()

    def __len__(self) -> int:
        return self._session.number_of_tuples()

    def cache_info(self) -> CacheInfo:
        """The session's cache counters."""
        return self._session.cache_info()

    # ------------------------------------------------------------------
    # Planning and execution
    # ------------------------------------------------------------------
    def plan(self, query: ConsensusQuery) -> ExecutionPlan:
        """The (memoized) execution plan for a query on this connection."""
        return self._planner.plan_for(query, self._session, self._deployment)

    def explain(self, query: ConsensusQuery) -> str:
        """Render the chosen execution path without running the query."""
        return self.plan(query).explain()

    def execute(self, query: ConsensusQuery, rng: Any = None) -> QueryAnswer:
        """Execute a query synchronously, returning a :class:`QueryAnswer`.

        On a served connection whose executor is running, the query is
        handed to the executor's event loop (thread-safe) so it serializes
        with all other serving work on the coordinator worker -- the
        coordinator session is not otherwise thread-safe.  ``rng`` is only
        meaningful on that path when the randomized route would bypass
        memoization anyway, so it is rejected there; pass seeds through
        local/sharded connections or the query's own ``sampled`` settings.
        """
        if self._executor is not None:
            loop = getattr(self._executor, "_loop", None)
            if loop is not None and loop.is_running():
                import asyncio

                try:
                    running = asyncio.get_running_loop()
                except RuntimeError:
                    running = None
                if running is loop:
                    raise PlanningError(
                        "Connection.execute() would deadlock inside the "
                        "executor's event loop; await execute_async() "
                        "instead"
                    )
                if rng is not None:
                    raise PlanningError(
                        "rng overrides are not supported through a running "
                        "serving executor; use a local/sharded connection"
                    )
                return asyncio.run_coroutine_threadsafe(
                    self._executor.execute(query), loop
                ).result()
        return self.plan(query).execute(rng=rng)

    async def execute_async(self, query: ConsensusQuery) -> QueryAnswer:
        """Execute through the serving executor (awaitable).

        Falls back to the synchronous path on local/sharded connections so
        async application code can treat every deployment uniformly.
        """
        if self._executor is None:
            return self.execute(query)
        return await self._executor.execute(query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Connection(deployment={self._deployment!r}, "
            f"n={self._session.number_of_tuples()})"
        )


def connect(
    target: Any,
    shards: Optional[int] = None,
    partitioner: str = "hash",
    planner: Optional[Planner] = None,
) -> Connection:
    """Open a :class:`Connection` over any supported target.

    Parameters
    ----------
    target:
        A convenience database (``TupleIndependentDatabase`` /
        ``BlockIndependentDatabase`` / ``XTupleDatabase``), an
        :class:`~repro.andxor.tree.AndXorTree`, a ``RankStatistics``, a
        :class:`~repro.session.QuerySession`, a
        :class:`~repro.models.sharded.ShardedDatabase`, a sharded
        coordinator session, a :class:`~repro.serving.ServingExecutor`, or
        an existing :class:`Connection` (returned unchanged).
    shards:
        When given (and the target is an unsharded database), partition it
        into this many shards first and connect to the coordinator.
        Incompatible with targets that are already connected or sharded --
        re-shard the underlying database instead.
    partitioner:
        Partitioning strategy for ``shards`` (``"hash"`` or ``"range"``).
    planner:
        Optional :class:`Planner` override (defaults to the process-wide
        hardness-aware planner).
    """
    if isinstance(target, Connection):
        if shards is not None:
            raise PlanningError(
                "cannot re-shard through a Connection; call "
                "connect(database, shards=...) on the underlying database"
            )
        if planner is not None and planner is not target.planner:
            # Rebind to the requested planner, sharing the warm session.
            return Connection(
                target.session,
                target.deployment,
                executor=target.executor,
                planner=planner,
            )
        return target
    if shards is not None:
        if shards < 1:
            raise PlanningError(
                f"shard count must be positive, got {shards}"
            )
        from repro.models.sharded import ShardedDatabase

        if isinstance(target, ShardedDatabase):
            raise PlanningError(
                "target is already sharded; connect to it directly or "
                "re-shard the underlying database"
            )
        target = ShardedDatabase(target, shards, partitioner=partitioner)
    session, deployment = resolve_session(target)
    executor = None
    if deployment == "served":
        executor = target
    return Connection(session, deployment, executor=executor, planner=planner)
