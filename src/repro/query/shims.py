"""Deprecation shims for the pre-declarative module-level entry points.

The historical top-level API exposed one function per consensus
algorithm.  Those names keep working -- re-exported from
:mod:`repro` -- but each now emits a :class:`DeprecationWarning` and
re-routes through :func:`repro.connect` and the hardness-aware planner,
returning answers identical (bit-for-bit) to the direct algorithm call.
New code should build :class:`~repro.query.ConsensusQuery` objects
instead:

>>> import repro
>>> answer = repro.connect(database).execute(
...     repro.Query.topk(k=10).distance("footrule")
... )                                             # doctest: +SKIP

The underlying algorithm implementations in :mod:`repro.consensus` are
*not* deprecated -- sessions and the planner call them directly; only the
top-level convenience wrappers funnel through here.
"""

from __future__ import annotations

import random
import warnings
from typing import Any, FrozenSet, Hashable, Optional, Tuple

from repro.core.tuples import TupleAlternative
from repro.query.builder import ConsensusQuery
from repro.query.connection import connect

World = FrozenSet[TupleAlternative]
TopKAnswer = Tuple[Hashable, ...]


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.{name}() is deprecated; use "
        f"repro.connect(...).execute({replacement}) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _run(source: Any, query: ConsensusQuery, rng: Any = None) -> Any:
    return connect(source).execute(query, rng=rng).value


def mean_topk_symmetric_difference(
    source: Any, k: int
) -> Tuple[TopKAnswer, float]:
    """Deprecated shim for the Theorem 3 mean Top-k answer under ``d_Δ``."""
    _deprecated("mean_topk_symmetric_difference", "Query.topk(k)")
    return _run(source, ConsensusQuery.topk(k, "symmetric_difference"))


def median_topk_symmetric_difference(
    source: Any, k: int
) -> Tuple[TopKAnswer, float]:
    """Deprecated shim for the Theorem 4 median Top-k answer under ``d_Δ``."""
    _deprecated("median_topk_symmetric_difference", "Query.topk(k).median()")
    return _run(
        source, ConsensusQuery.topk(k, "symmetric_difference").median()
    )


def mean_topk_footrule(source: Any, k: int) -> Tuple[TopKAnswer, float]:
    """Deprecated shim for the exact footrule mean Top-k answer."""
    _deprecated(
        "mean_topk_footrule", 'Query.topk(k).distance("footrule")'
    )
    return _run(source, ConsensusQuery.topk(k, "footrule"))


def mean_topk_intersection(source: Any, k: int) -> Tuple[TopKAnswer, float]:
    """Deprecated shim for the exact intersection-metric mean answer."""
    _deprecated(
        "mean_topk_intersection", 'Query.topk(k).distance("intersection")'
    )
    return _run(source, ConsensusQuery.topk(k, "intersection"))


def approximate_topk_intersection(
    source: Any, k: int
) -> Tuple[TopKAnswer, float]:
    """Deprecated shim for the ``H_k``-approximation under intersection."""
    _deprecated(
        "approximate_topk_intersection",
        'Query.topk(k).distance("intersection").approximate()',
    )
    return _run(
        source, ConsensusQuery.topk(k, "intersection").approximate()
    )


def approximate_topk_kendall(
    source: Any,
    k: int,
    candidate_pool_size: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> TopKAnswer:
    """Deprecated shim for the pivot-based approximate Kendall answer."""
    _deprecated(
        "approximate_topk_kendall",
        'Query.topk(k).distance("kendall").approximate()',
    )
    query = ConsensusQuery.topk(k, "kendall").approximate()
    if candidate_pool_size is not None:
        query = query.with_params(candidate_pool_size=candidate_pool_size)
    return _run(source, query, rng=rng)


def mean_world_symmetric_difference(source: Any) -> Tuple[World, float]:
    """Deprecated shim for the Theorem 2 mean consensus world."""
    _deprecated(
        "mean_world_symmetric_difference", "Query.set_consensus()"
    )
    return _run(source, ConsensusQuery.set_consensus())


def median_world_symmetric_difference(source: Any) -> Tuple[World, float]:
    """Deprecated shim for the exact median consensus world."""
    _deprecated(
        "median_world_symmetric_difference",
        'Query.set_consensus(statistic="median")',
    )
    return _run(source, ConsensusQuery.set_consensus("median"))


def mean_world_jaccard_tuple_independent(source: Any) -> Tuple[World, float]:
    """Deprecated shim for the Lemma 2 mean Jaccard consensus world."""
    _deprecated(
        "mean_world_jaccard_tuple_independent", "Query.jaccard()"
    )
    return _run(source, ConsensusQuery.jaccard())


def median_world_jaccard_bid(source: Any) -> Tuple[World, float]:
    """Deprecated shim for the Section 4.2 median Jaccard world (BID)."""
    _deprecated(
        "median_world_jaccard_bid", 'Query.jaccard(statistic="median")'
    )
    return _run(source, ConsensusQuery.jaccard("median"))
