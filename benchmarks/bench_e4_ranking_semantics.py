"""Experiment E4 (part 2): comparing ranking semantics with expected distance.

The paper's motivation: prior Top-k semantics (U-Top-k, U-Rank-k,
Global-Top-k, expected rank, expected score) lack a unified yardstick.  The
consensus framework supplies one -- the expected distance between an answer
and the random world's Top-k.  This experiment scores every semantics under
the three Top-k metrics; the consensus answer for a metric should win its own
column (Global-Top-k ties it for d_Delta by Theorem 3).
"""

from __future__ import annotations

import math
import random
import time

from _harness import report
from repro.andxor.rank_probabilities import RankStatistics
from repro.engine import numpy_available, use_backend
from repro.workloads.generators import random_tuple_independent_database
from repro.baselines.ranking import (
    expected_rank_topk,
    expected_score_topk,
    global_topk,
    u_rank_topk,
    u_topk,
)
from repro.consensus.topk.footrule import (
    expected_topk_footrule_distance,
    mean_topk_footrule,
)
from repro.consensus.topk.intersection import (
    expected_topk_intersection_distance,
    mean_topk_intersection,
)
from repro.consensus.topk.symmetric_difference import (
    expected_topk_symmetric_difference,
    mean_topk_symmetric_difference,
)
from repro.workloads.generators import random_bid_database

K = 5


def test_e4_ranking_semantics_comparison(benchmark):
    database = random_bid_database(
        40, rng=2009, max_alternatives=2, exhaustive=True
    )
    statistics = RankStatistics(database.tree)

    answers = {
        "consensus mean d_Delta": mean_topk_symmetric_difference(statistics, K)[0],
        "consensus mean d_I": mean_topk_intersection(statistics, K)[0],
        "consensus mean d_F": mean_topk_footrule(statistics, K)[0],
        "Global-Top-k": global_topk(statistics, K),
        "U-Rank-k": u_rank_topk(statistics, K),
        "expected rank": expected_rank_topk(statistics, K),
        "expected score": expected_score_topk(statistics, K),
        "U-Top-k (sampled)": u_topk(
            statistics, K, method="sample", samples=2000, rng=random.Random(0)
        ),
    }

    rows = []
    best = {"d_Delta": None, "d_I": None, "d_F": None}
    for name, answer in answers.items():
        d_delta = expected_topk_symmetric_difference(statistics, answer, K)
        d_i = expected_topk_intersection_distance(statistics, tuple(answer), K)
        d_f = expected_topk_footrule_distance(statistics, tuple(answer), K)
        rows.append((name, d_delta, d_i, d_f))
        for metric, value in (("d_Delta", d_delta), ("d_I", d_i), ("d_F", d_f)):
            if best[metric] is None or value < best[metric]:
                best[metric] = value

    # The consensus answer of each metric must achieve that metric's minimum.
    consensus_values = {
        "d_Delta": rows[0][1],
        "d_I": rows[1][2],
        "d_F": rows[2][3],
    }
    for metric, value in consensus_values.items():
        assert value <= best[metric] + 1e-9

    report(
        "E4c",
        f"Expected distance of each ranking semantics (n = 40, k = {K})",
        ("semantics", "E[d_Delta]", "E[d_I]", "E[d_F]"),
        rows,
        notes=(
            "Each consensus answer attains the minimum of its own column; "
            "Global-Top-k ties the d_Delta consensus (Theorem 3), while the "
            "other prior semantics are measurably worse on at least one "
            "metric -- the paper's argument for a principled, "
            "distance-driven choice of answer."
        ),
    )

    benchmark(lambda: mean_topk_intersection(statistics, K))


def test_e4_backend_speedup(benchmark):
    """Rank-probability computation: NumPy backend vs the pure-Python path.

    Computes the full ``n × n`` rank matrix (every ``Pr(r(t) = i)``) on
    tuple-independent databases under both backends, checks parity to 1e-9,
    and records the speedup in the BENCH trajectory.  The acceptance target
    is a >= 5x speedup at n >= 1000 with NumPy installed.
    """
    rows = []
    largest = None
    for n in (500, 1000, 2000):
        database = random_tuple_independent_database(
            n, rng=n, score_distribution="zipf"
        )
        with use_backend("python"):
            start = time.perf_counter()
            python_matrix = RankStatistics(database.tree).rank_matrix(n)
            python_seconds = time.perf_counter() - start
        if not numpy_available():
            rows.append((n, python_seconds, float("nan"), float("nan")))
            continue
        with use_backend("numpy"):
            start = time.perf_counter()
            numpy_matrix = RankStatistics(database.tree).rank_matrix(n)
            numpy_seconds = time.perf_counter() - start
        for key in python_matrix.keys():
            left, right = python_matrix.row(key), numpy_matrix.row(key)
            assert all(
                math.isclose(a, b, abs_tol=1e-9) for a, b in zip(left, right)
            )
        speedup = python_seconds / numpy_seconds
        rows.append((n, python_seconds, numpy_seconds, speedup))
        # The acceptance target is stated for n >= 1000; smaller cases are
        # reported but do not satisfy the gate.
        if n >= 1000 and (largest is None or speedup > largest[1]):
            largest = (n, speedup)
    # Persist the measured table before asserting, so a slow run still
    # leaves the per-n timings behind for diagnosis.
    report(
        "E4d",
        "Full rank matrix: pure-Python vs NumPy backend",
        ("n", "python [s]", "numpy [s]", "speedup"),
        rows,
        notes=(
            "Both backends produce identical matrices to 1e-9; the NumPy "
            "backend runs the one-pass Bernoulli-product sweep as n "
            "vectorized updates of length n instead of n^2 scalar ops."
        ),
    )
    if largest is not None:
        assert largest[1] >= 5.0, (
            f"expected >= 5x NumPy speedup (best was {largest[1]:.1f}x "
            f"at n = {largest[0]})"
        )

    database = random_tuple_independent_database(
        1000, rng=1000, score_distribution="zipf"
    )
    benchmark(
        lambda: RankStatistics(database.tree, use_fast_path=True).rank_matrix(
            1000
        )
    )
