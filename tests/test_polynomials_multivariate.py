"""Unit and property tests for sparse multivariate polynomials."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polynomials import (
    BivariatePolynomial,
    MultivariatePolynomial,
    UnivariatePolynomial,
)


def xy(terms, max_degrees=None):
    return MultivariatePolynomial(("x", "y"), terms, max_degrees=max_degrees)


class TestConstruction:
    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError):
            MultivariatePolynomial(("x", "x"))

    def test_exponent_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xy({(1,): 2.0})

    def test_zero_one_constant_variable(self):
        variables = ("x", "y")
        assert MultivariatePolynomial.zero(variables).is_zero()
        assert MultivariatePolynomial.one(variables).coefficient({}) == 1
        assert MultivariatePolynomial.constant(variables, 5).coefficient({}) == 5
        x = MultivariatePolynomial.variable(variables, "x")
        assert x.coefficient({"x": 1}) == 1
        with pytest.raises(ValueError):
            MultivariatePolynomial.variable(variables, "z")

    def test_zero_coefficients_dropped(self):
        assert xy({(1, 0): 0.0}).is_zero()

    def test_truncation_drops_terms(self):
        p = xy({(3, 0): 1.0, (1, 0): 2.0}, max_degrees={"x": 2})
        assert p.coefficient({"x": 3}) == 0
        assert p.coefficient({"x": 1}) == 2.0


class TestArithmetic:
    def test_addition_and_subtraction(self):
        p = xy({(1, 0): 1.0})
        q = xy({(1, 0): 2.0, (0, 1): 3.0})
        total = p + q
        assert total.coefficient({"x": 1}) == 3.0
        assert (total - q) == p

    def test_scalar_operations(self):
        p = xy({(1, 1): 2.0})
        assert (p * 3).coefficient({"x": 1, "y": 1}) == 6.0
        assert (p + 1).coefficient({}) == 1
        assert (-p).coefficient({"x": 1, "y": 1}) == -2.0

    def test_multiplication(self):
        x = MultivariatePolynomial.variable(("x", "y"), "x")
        y = MultivariatePolynomial.variable(("x", "y"), "y")
        square = (x + y) * (x + y)
        assert square.coefficient({"x": 1, "y": 1}) == 2

    def test_incompatible_variables_rejected(self):
        p = MultivariatePolynomial(("x",), {(1,): 1.0})
        q = MultivariatePolynomial(("y",), {(1,): 1.0})
        with pytest.raises(ValueError):
            p + q

    def test_degree(self):
        p = xy({(2, 1): 1.0, (0, 3): 2.0})
        assert p.degree("x") == 2
        assert p.degree("y") == 3
        assert MultivariatePolynomial.zero(("x", "y")).degree("x") == 0

    def test_repr_and_hash(self):
        p = xy({(1, 2): 1.5})
        assert "y^2" in repr(p)
        assert hash(p) == hash(xy({(1, 2): 1.5}))


class TestAgreementWithDenseRepresentations:
    """The sparse representation must agree with the specialised ones."""

    @given(
        st.lists(st.floats(-3, 3, allow_nan=False), min_size=1, max_size=5),
        st.lists(st.floats(-3, 3, allow_nan=False), min_size=1, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_univariate_product(self, a, b):
        dense = UnivariatePolynomial(a) * UnivariatePolynomial(b)
        sparse_a = MultivariatePolynomial(
            ("x",), {(i,): c for i, c in enumerate(a)}
        )
        sparse_b = MultivariatePolynomial(
            ("x",), {(i,): c for i, c in enumerate(b)}
        )
        sparse = sparse_a * sparse_b
        for exponent in range(dense.degree + 1):
            assert math.isclose(
                dense.coefficient(exponent),
                sparse.coefficient({"x": exponent}),
                rel_tol=1e-9,
                abs_tol=1e-9,
            )

    def test_matches_bivariate_product(self):
        dense = BivariatePolynomial([[1, 2], [3, 4]]) * BivariatePolynomial(
            [[0, 1], [1, 0]]
        )
        sparse_a = xy({(0, 0): 1, (0, 1): 2, (1, 0): 3, (1, 1): 4})
        sparse_b = xy({(0, 1): 1, (1, 0): 1})
        sparse = sparse_a * sparse_b
        for i in range(dense.degree_x + 1):
            for j in range(dense.degree_y + 1):
                assert math.isclose(
                    dense.coefficient(i, j), sparse.coefficient((i, j))
                )

    def test_evaluate_and_sum(self):
        p = xy({(1, 0): 0.5, (0, 1): 0.25, (0, 0): 0.25})
        assert math.isclose(p.sum_of_coefficients(), 1.0)
        assert math.isclose(p.evaluate({"x": 2.0, "y": 4.0}), 0.5 * 2 + 1 + 0.25)

    def test_almost_equal(self):
        p = xy({(1, 0): 1.0})
        q = xy({(1, 0): 1.0 + 1e-12})
        assert p.almost_equal(q)
        assert not p.almost_equal(xy({(1, 0): 1.1}))
