"""Tests for the synthetic workload generators and named scenarios."""

from __future__ import annotations

import math
import random

import pytest

from repro.andxor.rank_probabilities import RankStatistics
from repro.exceptions import WorkloadError
from repro.workloads.generators import (
    random_andxor_tree,
    random_bid_database,
    random_groupby_matrix,
    random_tuple_independent_database,
    random_xtuple_database,
)
from repro.workloads.scenarios import (
    extraction_groupby_scenario,
    movie_rating_scenario,
    sensor_network_scenario,
)
from repro.workloads.scores import gaussian_scores, uniform_scores, zipf_scores


class TestScores:
    @pytest.mark.parametrize(
        "factory", [uniform_scores, zipf_scores, gaussian_scores]
    )
    def test_distinct_scores(self, factory):
        rng = random.Random(0)
        scores = factory(200, rng)
        assert len(scores) == 200
        assert len(set(scores)) == 200

    def test_invalid_parameters(self):
        rng = random.Random(0)
        with pytest.raises(WorkloadError):
            uniform_scores(-1, rng)
        with pytest.raises(WorkloadError):
            uniform_scores(3, rng, low=5, high=1)
        with pytest.raises(WorkloadError):
            zipf_scores(3, rng, exponent=0)
        with pytest.raises(WorkloadError):
            gaussian_scores(3, rng, standard_deviation=0)


class TestGenerators:
    def test_tuple_independent_reproducible(self):
        first = random_tuple_independent_database(20, rng=5)
        second = random_tuple_independent_database(20, rng=5)
        assert first.tuple_probabilities() == second.tuple_probabilities()
        assert len(first) == 20

    def test_tuple_independent_bounds_checked(self):
        with pytest.raises(WorkloadError):
            random_tuple_independent_database(5, min_probability=0.9, max_probability=0.1)

    def test_bid_exhaustive_blocks_sum_to_one(self):
        database = random_bid_database(10, rng=1, exhaustive=True)
        for key in database.keys():
            assert math.isclose(
                database.block_presence_probability(key), 1.0, abs_tol=1e-9
            )

    def test_bid_valid_rank_statistics(self):
        database = random_bid_database(8, rng=2)
        statistics = RankStatistics(database.tree)
        assert len(statistics.keys()) == 8

    def test_bid_bad_bounds(self):
        with pytest.raises(WorkloadError):
            random_bid_database(3, min_alternatives=0)

    def test_xtuple_generator(self):
        database = random_xtuple_database(6, rng=3, exhaustive=True)
        assert len(database.groups()) == 6
        with pytest.raises(WorkloadError):
            random_xtuple_database(3, min_members=2, max_members=1)

    def test_random_andxor_tree_valid(self):
        tree = random_andxor_tree(15, rng=4)
        tree.validate()
        assert len(tree.keys()) == 15
        with pytest.raises(WorkloadError):
            random_andxor_tree(0)

    def test_zipf_scored_database(self):
        database = random_tuple_independent_database(
            10, rng=6, score_distribution="zipf"
        )
        assert len(database) == 10
        with pytest.raises(WorkloadError):
            random_tuple_independent_database(5, score_distribution="bogus")

    def test_groupby_matrix_rows_sum_to_one(self):
        rows = random_groupby_matrix(10, 4, rng=7)
        assert len(rows) == 10
        for row in rows:
            assert math.isclose(sum(row.values()), 1.0, abs_tol=1e-9)
        with pytest.raises(WorkloadError):
            random_groupby_matrix(0, 3)
        with pytest.raises(WorkloadError):
            random_groupby_matrix(3, 3, sparsity=1.5)


class TestScenarios:
    def test_sensor_network(self):
        scenario = sensor_network_scenario(sensor_count=6)
        assert len(scenario.database) == 6
        # Every sensor surely reports something (attribute uncertainty only).
        for key in scenario.database.keys():
            assert scenario.database.presence_probability(key) == pytest.approx(1.0)
        RankStatistics(scenario.database.tree)

    def test_movie_ratings(self):
        scenario = movie_rating_scenario(movie_count=8)
        assert len(scenario.database) == 8
        assert "movie" in scenario.description

    def test_extraction_groupby(self):
        scenario = extraction_groupby_scenario(mention_count=10, company_count=3)
        assert len(scenario.database) == 10
        values = {a.value for a in scenario.database.alternatives()}
        assert values <= {f"company{i + 1}" for i in range(3)}


class TestScenarioScaling:
    def test_scale_multiplies_every_scenario(self):
        from repro.workloads.scenarios import scenario

        assert len(scenario("sensor_network", scale=2.0).database) == 24
        assert len(scenario("movie_ratings", scale=3.0).database) == 30
        assert len(scenario("extraction_mentions", scale=0.5).database) == 10

    def test_large_scale_keeps_scores_distinct(self):
        # n >> the 3-decimal score grid of the unscaled movie scenario:
        # the adaptive rounding precision must keep scores pairwise distinct
        # (and the database valid for ranking queries).
        database = movie_rating_scenario(scale=300.0).database
        assert len(database) == 3000
        scores = [a.effective_score() for a in database.alternatives()]
        assert len(set(scores)) == len(scores)
        RankStatistics(database.tree)

    def test_default_scale_outputs_unchanged(self):
        # scale=1.0 must reproduce the historical databases exactly.
        baseline = movie_rating_scenario(movie_count=10)
        scaled = movie_rating_scenario(movie_count=10, scale=1.0)
        assert (
            baseline.database.tuple_probabilities()
            == scaled.database.tuple_probabilities()
        )
        assert {a.effective_score() for a in baseline.database.alternatives()} == {
            a.effective_score() for a in scaled.database.alternatives()
        }

    def test_registry_lookup_and_errors(self):
        from repro.workloads.scenarios import SCENARIO_NAMES, scenario

        assert set(SCENARIO_NAMES) == {
            "sensor_network",
            "movie_ratings",
            "extraction_mentions",
        }
        built = scenario("movie_ratings", scale=1.0, rng=11)
        assert built.name == "movie_ratings"
        with pytest.raises(WorkloadError):
            scenario("unknown_scenario")
        with pytest.raises(WorkloadError):
            scenario("movie_ratings", scale=0.0)
