"""Baseline ranking semantics from prior work.

The paper motivates consensus answers by the profusion of competing Top-k
semantics for probabilistic databases (U-Top-k, U-Rank-k, PT-k, Global-Top-k,
expected rank, expected score).  This package implements those baselines so
the benchmark harness can compare them against the consensus answers under
the paper's expected-distance framework -- the "unified and systematic
analysis framework" the introduction calls for.
"""

from repro.baselines.ranking import (
    expected_rank_topk,
    expected_score_topk,
    global_topk,
    probabilistic_threshold_topk,
    u_rank_topk,
    u_topk,
)

__all__ = [
    "u_topk",
    "u_rank_topk",
    "probabilistic_threshold_topk",
    "global_topk",
    "expected_rank_topk",
    "expected_score_topk",
]
