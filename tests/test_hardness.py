"""Tests for the MAX-2-SAT reduction of Section 4.1."""

from __future__ import annotations

import math
import random

import pytest

from repro.consensus.hardness import (
    build_reduction,
    enumerate_assignments,
    exhaustive_max_2sat,
    make_instance,
    median_answer_by_enumeration,
    verify_reduction,
)
from repro.exceptions import ConsensusError, EnumerationLimitError


def random_clauses(seed, variables=4, clauses=6):
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(variables)]
    out = []
    for _ in range(clauses):
        first, second = rng.sample(names, 2)
        out.append(
            ((first, rng.random() < 0.5), (second, rng.random() < 0.5))
        )
    return out


class TestInstanceConstruction:
    def test_make_instance_infers_variables(self):
        instance = make_instance([(("a", True), ("b", False))])
        assert instance.variables == ("a", "b")
        assert instance.count_satisfied({"a": True, "b": True}) == 1
        assert instance.count_satisfied({"a": False, "b": True}) == 0

    def test_bad_clause_rejected(self):
        with pytest.raises(ConsensusError):
            make_instance([(("a", True),)])
        with pytest.raises(ConsensusError):
            make_instance([(("a", 1), ("b", True))])

    def test_enumerate_assignments_limit(self):
        with pytest.raises(EnumerationLimitError):
            list(enumerate_assignments([f"x{i}" for i in range(40)]))


class TestReduction:
    def test_result_tuple_probabilities(self):
        reduction = build_reduction(
            [
                (("x", True), ("y", False)),   # standard clause -> 3/4
                (("x", True), ("x", True)),    # repeated literal -> 1/2
                (("x", True), ("x", False)),   # tautology -> 1
            ]
        )
        assert reduction.result_tuple_probability(0) == pytest.approx(0.75)
        assert reduction.result_tuple_probability(1) == pytest.approx(0.5)
        assert reduction.result_tuple_probability(2) == pytest.approx(1.0)

    def test_variable_relation_is_uniform(self):
        reduction = build_reduction(random_clauses(0))
        for key in reduction.variable_relation.keys():
            assert reduction.variable_relation.key_probability(key) == pytest.approx(1.0)
            for alternative in reduction.variable_relation.alternatives_of(key):
                assert reduction.variable_relation.alternative_probability(
                    alternative
                ) == pytest.approx(0.5)

    def test_answer_of_assignment(self):
        clauses = [(("a", True), ("b", False)), (("b", True), ("a", False))]
        reduction = build_reduction(clauses)
        answer = reduction.answer_of_assignment({"a": True, "b": True})
        assert answer == frozenset({0, 1})
        answer = reduction.answer_of_assignment({"a": False, "b": True})
        assert answer == frozenset({1})

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_median_answer_solves_max_2sat(self, seed):
        """The heart of the hardness argument: the median answer of the
        reduced query corresponds to an optimal MAX-2-SAT assignment."""
        clauses = random_clauses(seed)
        reduction = build_reduction(clauses)
        assert verify_reduction(reduction)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_median_answer_details(self, seed):
        clauses = random_clauses(seed, variables=3, clauses=5)
        reduction = build_reduction(clauses)
        _, optimal_count = exhaustive_max_2sat(reduction.instance)
        answer, witness, value = median_answer_by_enumeration(reduction)
        assert len(answer) == optimal_count
        assert reduction.instance.count_satisfied(witness) == optimal_count
        # The expected distance equals sum over clauses of min(P, 1-P) plus
        # the unsatisfied clauses' extra cost.
        probabilities = [
            reduction.result_tuple_probability(i)
            for i in range(len(reduction.instance.clauses))
        ]
        expected_value = sum(
            (1.0 - p) if i in answer else p
            for i, p in enumerate(probabilities)
        )
        assert math.isclose(value, expected_value, abs_tol=1e-12)

    def test_empty_instance(self):
        assignment, count = exhaustive_max_2sat(make_instance([]))
        assert assignment == {}
        assert count == 0
