"""Experiment E1: the generating-function framework (Theorem 1, Figure 1).

Validates that coefficient extraction from the and/xor tree generating
function reproduces brute-force possible-world probabilities (including the
exact numbers of Figure 1 of the paper), and measures how the computation
scales with the database size -- the paper's claim is polynomial time, in
contrast to the exponential explicit possible-worlds representation.
"""

from __future__ import annotations

import math
import time

import pytest

from _harness import report
from repro.andxor.builders import figure1_bid_example, figure1_correlated_example
from repro.andxor.enumeration import enumerate_worlds
from repro.andxor.generating import (
    bivariate_generating_function,
    univariate_generating_function,
)
from repro.andxor.statistics import size_distribution
from repro.workloads.generators import (
    random_bid_database,
    random_tuple_independent_database,
)


def test_e1_figure1_reproduction(benchmark):
    """Reproduce the two worked examples of Figure 1 exactly."""
    rows = []
    tree = figure1_bid_example()
    polynomial = univariate_generating_function(tree)
    for degree, expected in [(2, 0.08), (3, 0.44), (4, 0.48)]:
        measured = polynomial.coefficient(degree)
        rows.append((f"Figure 1(i) coeff of x^{degree}", expected, measured))
        assert measured == pytest.approx(expected)

    correlated = figure1_correlated_example()

    def variable_of(leaf):
        alternative = leaf.alternative
        if alternative.key == "t3" and alternative.value == 6:
            return "y"
        if alternative.effective_score() > 6:
            return "x"
        return None

    rank_polynomial = bivariate_generating_function(correlated, variable_of)
    for (i, j), expected in [((0, 1), 0.3), ((1, 0), 0.4), ((2, 0), 0.3)]:
        measured = rank_polynomial.coefficient(i, j)
        rows.append((f"Figure 1(iii) coeff of x^{i} y^{j}", expected, measured))
        assert measured == pytest.approx(expected)

    report(
        "F1",
        "Figure 1 generating functions: paper value vs computed value",
        ("coefficient", "paper", "measured"),
        rows,
    )
    benchmark(lambda: univariate_generating_function(figure1_bid_example()))


def test_e1_size_distribution_matches_enumeration(benchmark):
    """Theorem 1 on random BID databases small enough to enumerate."""
    rows = []
    for seed, blocks in [(0, 4), (1, 6), (2, 8)]:
        database = random_bid_database(blocks, rng=seed, max_alternatives=2)
        tree = database.tree
        distribution = enumerate_worlds(tree)
        sizes = size_distribution(tree)
        worst = 0.0
        for count, probability in enumerate(sizes):
            oracle = distribution.probability_that(lambda w: len(w) == count)
            worst = max(worst, abs(probability - oracle))
        rows.append((blocks, len(distribution), worst))
        assert worst < 1e-9
    report(
        "E1a",
        "Size-distribution coefficients vs. brute-force enumeration",
        ("blocks", "possible worlds", "max abs error"),
        rows,
    )
    small = random_bid_database(6, rng=1, max_alternatives=2)
    benchmark(lambda: size_distribution(small.tree))


def test_e1_scaling(benchmark):
    """Runtime of the size-distribution generating function vs database size."""
    rows = []
    for n in (100, 200, 400, 800, 1600):
        database = random_tuple_independent_database(n, rng=n)
        start = time.perf_counter()
        polynomial = univariate_generating_function(database.tree)
        elapsed = time.perf_counter() - start
        total = polynomial.sum_of_coefficients()
        rows.append((n, elapsed, total))
        assert math.isclose(total, 1.0, abs_tol=1e-6)
    report(
        "E1b",
        "Generating-function runtime scaling (full world-size distribution)",
        ("tuples", "seconds", "total probability"),
        rows,
        notes=(
            "The growth is polynomial (roughly quadratic for the full, "
            "untruncated distribution), versus the 2^n explicit "
            "possible-worlds representation."
        ),
    )

    database = random_tuple_independent_database(400, rng=7)
    benchmark(lambda: univariate_generating_function(database.tree))
