"""Synthetic workload generators.

The paper is a theory paper with no published datasets, so the evaluation is
driven by synthetic databases whose structure matches the models the paper
analyses (see DESIGN.md, "Substitutions").  This package provides seeded
generators for

* tuple-independent, BID, x-tuple and general and/xor-tree databases with
  controllable size, correlation structure and probability distributions
  (:mod:`repro.workloads.generators`),
* score distributions -- uniform, Zipf-like, Gaussian
  (:mod:`repro.workloads.scores`),
* named "realistic" scenarios used by the examples -- a noisy sensor
  network, movie-rating style score uncertainty, and information-extraction
  style group-by data -- each scalable to serving-benchmark sizes via the
  ``scale`` argument (:mod:`repro.workloads.scenarios`), and
* concurrent query/update traffic streams driving the serving layer
  (:mod:`repro.workloads.traffic`), and a chaos-replay harness that
  accounts for every request under fault injection
  (:mod:`repro.workloads.chaos`).

Seeds: every generator accepts ``rng`` as a generator or integer seed;
``rng=None`` routes through the process-wide ``REPRO_SEED`` generator so
whole runs replay from one seed.
"""

from repro.workloads.generators import (
    random_andxor_tree,
    random_bid_database,
    random_groupby_matrix,
    random_tuple_independent_database,
    random_xtuple_database,
)
from repro.workloads.scores import (
    gaussian_scores,
    uniform_scores,
    zipf_scores,
)
from repro.workloads.scenarios import (
    SCENARIO_NAMES,
    Scenario,
    extraction_groupby_scenario,
    movie_rating_scenario,
    scenario,
    sensor_network_scenario,
)
from repro.workloads.chaos import (
    ChaosOutcome,
    chaos_replay,
    chaos_summary,
)
from repro.workloads.traffic import (
    bursty_traffic,
    update_heavy_traffic,
    DEFAULT_QUERY_MIX,
    TrafficEvent,
    generate_traffic,
    replay_traffic,
    replay_traffic_http,
    traffic_signature,
)

__all__ = [
    "random_tuple_independent_database",
    "random_bid_database",
    "random_xtuple_database",
    "random_andxor_tree",
    "random_groupby_matrix",
    "uniform_scores",
    "zipf_scores",
    "gaussian_scores",
    "Scenario",
    "SCENARIO_NAMES",
    "scenario",
    "sensor_network_scenario",
    "movie_rating_scenario",
    "extraction_groupby_scenario",
    "DEFAULT_QUERY_MIX",
    "TrafficEvent",
    "generate_traffic",
    "update_heavy_traffic",
    "bursty_traffic",
    "replay_traffic",
    "replay_traffic_http",
    "traffic_signature",
    "ChaosOutcome",
    "chaos_replay",
    "chaos_summary",
]
