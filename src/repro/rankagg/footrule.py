"""Optimal Spearman-footrule aggregation via the assignment problem.

Dwork, Kumar, Naor and Sivakumar observed that the footrule-optimal
aggregation of full rankings can be computed exactly in polynomial time as a
minimum-cost bipartite matching between items and positions, and that the
result 2-approximates the (NP-hard) Kemeny optimum because the footrule
distance is within a factor two of the Kendall distance.  The paper reuses
exactly this assignment-problem strategy for the probabilistic footrule
consensus answer (Section 5.4); this module provides the classical
deterministic version used as a baseline and as a building block.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.exceptions import ConsensusError
from repro.matching import minimize_cost_assignment

Ranking = Sequence[Hashable]
WeightedRankings = Sequence[Tuple[Ranking, float]]


def footrule_distance_between_rankings(
    first: Ranking, second: Ranking
) -> float:
    """Spearman footrule distance (L1 distance of position vectors)."""
    if set(first) != set(second):
        raise ConsensusError(
            "footrule distance between full rankings requires equal item sets"
        )
    positions_first = {item: index for index, item in enumerate(first)}
    positions_second = {item: index for index, item in enumerate(second)}
    return float(
        sum(
            abs(positions_first[item] - positions_second[item])
            for item in positions_first
        )
    )


def optimal_footrule_aggregation(
    rankings: WeightedRankings,
) -> Tuple[Tuple[Hashable, ...], float]:
    """Footrule-optimal aggregation of weighted full rankings.

    Returns the aggregated ranking and its total weighted footrule distance
    to the input rankings.  All rankings must order the same item set.
    """
    if not rankings:
        raise ConsensusError("no rankings to aggregate")
    items = list(rankings[0][0])
    item_set = set(items)
    for ranking, _ in rankings:
        if set(ranking) != item_set:
            raise ConsensusError(
                "all rankings must order the same set of items"
            )
    positions: List[Dict[Hashable, int]] = [
        {item: index for index, item in enumerate(ranking)}
        for ranking, _ in rankings
    ]
    weights = [weight for _, weight in rankings]
    n = len(items)
    # cost[position][item]: total weighted displacement of placing the item
    # at that position.
    cost = [
        [
            sum(
                weight * abs(position_map[item] - position)
                for position_map, weight in zip(positions, weights)
            )
            for item in items
        ]
        for position in range(n)
    ]
    assignment, total_cost = minimize_cost_assignment(cost)
    aggregated: List[Hashable] = [None] * n
    for position, item_index in enumerate(assignment):
        aggregated[position] = items[item_index]
    return tuple(aggregated), total_cost
