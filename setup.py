"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools predates full PEP 660 support
(``pip install -e . --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Consensus answers for queries over probabilistic databases "
        "(Li & Deshpande, PODS 2009) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
