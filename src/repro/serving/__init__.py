"""Async sharded serving layer.

The paper frames consensus answers as a query-time service over a
probabilistic database; this package is the serving assembly of the
reproduction's per-shard pieces:

* :class:`~repro.serving.requests.QueryRequest` -- hashable typed queries
  (consensus Top-k under any supported distance, memberships, baselines).
* :class:`~repro.serving.executor.ServingExecutor` -- the asyncio
  front-end: request coalescing, micro-batching, a per-shard worker pool
  for summary refresh / shard rebuilds, and graceful cache-invalidation
  fan-out on updates.
* :mod:`repro.serving.metrics` -- latency and throughput instrumentation.

Traffic to drive it comes from :mod:`repro.workloads.traffic`.
"""

from repro.serving.executor import ServingExecutor
from repro.serving.metrics import (
    LatencyRecorder,
    ServingMetrics,
    ServingMetricsSnapshot,
)
from repro.serving.requests import (
    QUERY_DISPATCH,
    QueryRequest,
    execute_request,
)

__all__ = [
    "LatencyRecorder",
    "QUERY_DISPATCH",
    "QueryRequest",
    "ServingExecutor",
    "ServingMetrics",
    "ServingMetricsSnapshot",
    "execute_request",
]
