"""Block-independent disjoint (BID) probabilistic relations.

A BID relation groups alternatives by their possible-worlds key: the
alternatives of one key are mutually exclusive (their probabilities sum to at
most one), and different keys are independent (Section 3.1 of the paper).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Tuple

from repro.andxor.builders import bid_tree
from repro.exceptions import ProbabilityError
from repro.models.relation import ProbabilisticRelation

# One block: key -> list of (value, probability) or (value, score, probability)
BlockSpec = Iterable[Tuple]


class BlockIndependentDatabase(ProbabilisticRelation):
    """A block-independent disjoint relation ``R(K; A; Pr)``.

    Parameters
    ----------
    blocks:
        Mapping (or iterable of pairs) from key to an iterable of
        ``(value, probability)`` or ``(value, score, probability)``
        alternatives.
    name:
        Optional relation name.
    """

    def __init__(
        self,
        blocks: Mapping[Hashable, BlockSpec] | Iterable[Tuple[Hashable, BlockSpec]],
        name: str = "bid",
    ) -> None:
        if isinstance(blocks, Mapping):
            items = list(blocks.items())
        else:
            items = list(blocks)
        normalized: List[Tuple[Hashable, List[Tuple[Hashable, float]]]] = []
        scores: Dict[Tuple[Hashable, Hashable], float] = {}
        self._blocks: Dict[Hashable, List[Tuple[Hashable, float]]] = {}
        for key, alternatives in items:
            if key in self._blocks:
                raise ProbabilityError(f"duplicate block key {key!r}")
            block: List[Tuple[Hashable, float]] = []
            for alternative in alternatives:
                if len(alternative) == 2:
                    value, probability = alternative
                elif len(alternative) == 3:
                    value, score, probability = alternative
                    scores[(key, value)] = float(score)
                else:
                    raise ProbabilityError(
                        "expected (value, probability) or "
                        f"(value, score, probability), got {alternative!r}"
                    )
                block.append((value, float(probability)))
            normalized.append((key, block))
            self._blocks[key] = block
        super().__init__(
            bid_tree(normalized, scores=scores or None), name=name
        )

    def blocks(self) -> Dict[Hashable, List[Tuple[Hashable, float]]]:
        """The block specification as given at construction."""
        return {key: list(block) for key, block in self._blocks.items()}

    def block_presence_probability(self, key: Hashable) -> float:
        """Probability that the block produces any alternative."""
        return sum(probability for _, probability in self._blocks[key])
