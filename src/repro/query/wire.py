"""Loss-free JSON encoding for query values on the wire.

The HTTP front door (:mod:`repro.server`) ships :class:`~repro.query
.QueryAnswer` values and :class:`~repro.query.ConsensusQuery` objects as
JSON.  Raw answer values are *legacy-shaped* Python structures -- tuples of
tuple keys, ``(answer, expected_distance)`` pairs, membership dictionaries
whose keys may be arbitrary hashables -- and plain ``json.dumps`` would
silently collapse tuples into lists and stringify dictionary keys.  The
codec here is loss-free instead: every container that JSON cannot represent
natively travels as a small tagged object, and :func:`decode_value`
reconstructs the exact original (``decode_value(json.loads(json.dumps(
encode_value(v)))) == v``, asserted by the wire-format test suite over
every serving kind on both backends).

Tagged forms (``__repro__`` names the original type)::

    ("a", 1)              -> {"__repro__": "tuple", "items": ["a", 1]}
    {1: 0.5}              -> {"__repro__": "dict", "items": [[1, 0.5]]}
    {"t1", "t2"}          -> {"__repro__": "set", "items": ["t1", "t2"]}
    float("inf")          -> {"__repro__": "float", "value": "inf"}

Lists, finite floats, ints, bools, strings and ``None`` pass through as
themselves; dictionaries keep the natural JSON-object form whenever every
key is a plain string and the tag key is absent.  NumPy scalars are
narrowed to their Python equivalents at encode time (``.item()``), so a
NumPy-backed answer and a pure-Python answer produce the same document.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ConsensusError

#: The tag key marking an encoded container that JSON cannot carry natively.
TAG = "__repro__"


def encode_value(value: Any) -> Any:
    """A JSON-safe structure losslessly describing ``value``."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        # Strict JSON has no Infinity/NaN literal; tag the repr instead.
        return {TAG: "float", "value": repr(value)}
    if isinstance(value, tuple):
        return {TAG: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        items = [encode_value(v) for v in value]
        # Canonical order: set iteration order is arbitrary, and wire
        # documents should be byte-stable for identical values.
        items.sort(key=lambda item: json.dumps(item, sort_keys=True))
        kind = "set" if isinstance(value, set) else "frozenset"
        return {TAG: kind, "items": items}
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and TAG not in value:
            return {key: encode_value(v) for key, v in value.items()}
        return {
            TAG: "dict",
            "items": [
                [encode_value(key), encode_value(v)]
                for key, v in value.items()
            ],
        }
    # NumPy scalars (np.float64 probabilities, np.int64 counts) narrow to
    # the exact Python equivalent, keeping documents backend-independent.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            narrowed = item()
        except TypeError:
            narrowed = value
        if type(narrowed) is not type(value):
            return encode_value(narrowed)
    raise ConsensusError(
        f"value of type {type(value).__name__!r} has no loss-free JSON "
        f"wire form: {value!r}"
    )


def decode_value(data: Any) -> Any:
    """The exact value :func:`encode_value` encoded into ``data``."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode_value(item) for item in data]
    if isinstance(data, dict):
        tag = data.get(TAG)
        if tag is None:
            return {key: decode_value(v) for key, v in data.items()}
        if tag == "float":
            return float(data["value"])
        if tag == "tuple":
            return tuple(decode_value(item) for item in data["items"])
        if tag == "set":
            return {decode_value(item) for item in data["items"]}
        if tag == "frozenset":
            return frozenset(decode_value(item) for item in data["items"])
        if tag == "dict":
            return {
                decode_value(key): decode_value(v)
                for key, v in data["items"]
            }
        raise ConsensusError(f"unknown wire tag {tag!r}")
    raise ConsensusError(
        f"malformed wire value of type {type(data).__name__!r}"
    )


# ----------------------------------------------------------------------
# ConsensusQuery <-> dict
# ----------------------------------------------------------------------
def query_to_dict(query: Any) -> Dict[str, Any]:
    """The full wire form of one :class:`~repro.query.ConsensusQuery`.

    Unlike the legacy ``(kind, k, params)`` triple this carries *every*
    field -- Monte-Carlo sizing included -- so any declarative query
    round-trips, not just the ten legacy wire kinds.
    """
    return {
        "family": query.family,
        "k": query.k,
        "metric": query.metric,
        "statistic": query.statistic,
        "mode": query.mode,
        "target_epsilon": query.target_epsilon,
        "confidence_level": query.confidence_level,
        "sample_cap": query.sample_cap,
        "semantics": query.semantics,
        "params": [
            [name, encode_value(value)] for name, value in query.params
        ],
        "fingerprint": query.fingerprint(),
    }


def query_from_dict(data: Dict[str, Any]) -> Any:
    """Rebuild a :class:`~repro.query.ConsensusQuery` from its wire form.

    Validation runs through the builder's ``__post_init__``, so malformed
    documents raise :class:`~repro.exceptions.ConsensusError` -- the HTTP
    layer maps that to a 400 instead of executing garbage.
    """
    from repro.query.builder import ConsensusQuery

    if not isinstance(data, dict):
        raise ConsensusError(
            f"a wire query must be a JSON object, got "
            f"{type(data).__name__!r}"
        )
    params = data.get("params", [])
    if not isinstance(params, (list, tuple)):
        raise ConsensusError("wire query 'params' must be an array of pairs")
    try:
        decoded_params = tuple(
            sorted((str(name), decode_value(value)) for name, value in params)
        )
    except (TypeError, ValueError) as error:
        raise ConsensusError(f"malformed wire query params: {error}") from None
    query = ConsensusQuery(
        family=data.get("family"),
        k=data.get("k"),
        metric=data.get("metric"),
        statistic=data.get("statistic", "mean"),
        mode=data.get("mode", "auto"),
        target_epsilon=data.get("target_epsilon"),
        confidence_level=data.get("confidence_level", 0.95),
        sample_cap=data.get("sample_cap"),
        semantics=data.get("semantics"),
        params=decoded_params,
    )
    expected = data.get("fingerprint")
    if expected is not None and expected != query.fingerprint():
        raise ConsensusError(
            f"wire query fingerprint mismatch: document says {expected!r}, "
            f"decoded query is {query.fingerprint()!r}"
        )
    return query


def dumps(payload: Any) -> str:
    """Canonical JSON rendering used by every wire document."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def loads(text: Any) -> Any:
    """Parse a wire document, normalizing errors to ConsensusError."""
    if isinstance(text, (bytes, bytearray)):
        text = text.decode("utf-8", errors="replace")
    try:
        return json.loads(text)
    except (json.JSONDecodeError, TypeError) as error:
        raise ConsensusError(f"malformed JSON document: {error}") from None


def estimate_to_dict(estimate: Any) -> Optional[Dict[str, Any]]:
    """Wire form of a Monte-Carlo :class:`~repro.engine.Estimate`."""
    if estimate is None:
        return None
    return {
        "mean": encode_value(float(estimate.mean)),
        "variance": encode_value(float(estimate.variance)),
        "samples": int(estimate.samples),
    }


def estimate_from_dict(data: Optional[Dict[str, Any]]) -> Optional[Any]:
    """Rebuild an :class:`~repro.engine.Estimate` (std error re-derived)."""
    if data is None:
        return None
    from repro.engine.sampling import Estimate

    return Estimate(
        mean=decode_value(data["mean"]),
        variance=decode_value(data["variance"]),
        samples=int(data["samples"]),
    )


__all__ = [
    "TAG",
    "decode_value",
    "dumps",
    "encode_value",
    "estimate_from_dict",
    "estimate_to_dict",
    "loads",
    "query_from_dict",
    "query_to_dict",
]
