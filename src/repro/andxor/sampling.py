"""Monte-Carlo sampling of possible worlds from and/xor trees.

Sampling follows the independent generative process of Definition 1: every
xor node independently picks one child (or nothing) according to its edge
probabilities, every and node takes the union of its children's samples.

Two routes are provided:

* :func:`sample_world` / :func:`sample_worlds` / :func:`estimate_expectation`
  -- the per-world recursive reference walk.
* :func:`sample_worlds_batched` -- the batched engine sampler
  (:class:`repro.engine.MonteCarloSampler`): the tree is flattened once and
  ``S`` worlds are drawn through one vectorized kernel call per batch.  For
  repeated sampling against one database prefer
  :meth:`repro.session.QuerySession.sampler`, which memoizes the flattened
  layout.

Reproducibility
---------------
Every function accepts ``rng`` as a ``random.Random``, an integer seed, or
None.  ``None`` resolves to the process-wide generator of
:func:`repro.engine.default_rng`, which the ``REPRO_SEED`` environment
variable seeds deterministically -- so both the per-world walk and the
batched kernels replay identically (per backend) across runs.
"""

from __future__ import annotations

import random
from typing import List, Set, Union

from repro.andxor.nodes import AndNode, Leaf, Node, XorNode
from repro.andxor.tree import AndXorTree
from repro.core.tuples import TupleAlternative
from repro.core.worlds import PossibleWorld
from repro.engine.sampling import MonteCarloSampler, resolve_rng
from repro.exceptions import ModelError

RandomSource = Union[random.Random, int, None]


def _sample_node(
    node: Node, rng: random.Random, out: Set[TupleAlternative]
) -> None:
    if isinstance(node, Leaf):
        out.add(node.alternative)
        return
    if isinstance(node, XorNode):
        draw = rng.random()
        cumulative = 0.0
        for child, probability in node.edges():
            cumulative += probability
            if draw < cumulative:
                _sample_node(child, rng, out)
                return
        return  # nothing produced
    if isinstance(node, AndNode):
        for child in node.children():
            _sample_node(child, rng, out)
        return
    raise ModelError(f"unsupported node type {type(node).__name__}")


def sample_world(tree: AndXorTree, rng: RandomSource = None) -> PossibleWorld:
    """Draw one possible world from the tree's distribution."""
    rng = resolve_rng(rng)
    alternatives: Set[TupleAlternative] = set()
    _sample_node(tree.root, rng, alternatives)
    return PossibleWorld(alternatives)


def sample_worlds(
    tree: AndXorTree, count: int, rng: RandomSource = None
) -> List[PossibleWorld]:
    """Draw ``count`` independent possible worlds, one recursive walk each.

    This is the per-world reference path; :func:`sample_worlds_batched`
    draws the same distribution through the vectorized engine kernels.
    """
    rng = resolve_rng(rng)
    return [sample_world(tree, rng) for _ in range(count)]


def sample_worlds_batched(
    tree: AndXorTree, count: int, rng: RandomSource = None
) -> List[PossibleWorld]:
    """Draw ``count`` independent possible worlds through the batched engine.

    Flattens the tree, draws the whole batch in one backend kernel call and
    materialises the worlds.  For repeated batches against one database use
    :meth:`repro.session.QuerySession.sampler` (or hold a
    :class:`repro.engine.MonteCarloSampler`) so the flattened layout is
    reused.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    return MonteCarloSampler(tree, rng=rng).sample_batch(count).worlds()


def estimate_expectation(
    tree: AndXorTree,
    function,
    samples: int,
    rng: RandomSource = None,
) -> float:
    """Monte-Carlo estimate of ``E[function(world)]`` (per-world walk).

    :meth:`repro.engine.MonteCarloSampler.estimate_expectation` computes
    the same estimate through the batched sampler and additionally reports
    the sampling uncertainty.
    """
    rng = resolve_rng(rng)
    if samples <= 0:
        raise ValueError("samples must be positive")
    total = 0.0
    for _ in range(samples):
        total += function(sample_world(tree, rng))
    return total / samples
