"""The HTTP front door: an asyncio wire protocol over the serving layer.

Everything below this package is in-process; :mod:`repro.server` puts a
socket in front of it, standard library only.  :class:`ReproServer`
binds ``asyncio.start_server`` over a
:class:`~repro.serving.ServingExecutor` (or builds one from a
:class:`~repro.models.ShardedDatabase`), speaking a hand-rolled
HTTP/1.1 JSON dialect with loss-free value encoding
(:mod:`repro.query.wire`).  :class:`ReproClient` is the matching
blocking client with typed error mapping, and :class:`ServerThread`
boots a server on a background thread for tests, benchmarks and the
examples.

Admission control (429 + ``Retry-After``), per-request deadlines (504),
typed shard-outage reporting (503, honoring degraded reads) and
graceful drain are part of the protocol -- see :mod:`repro.server.app`.
"""

from repro.server.app import PLAN_REGISTRY_LIMIT, ReproServer, ServerThread
from repro.server.client import ReproClient
from repro.server.http import HttpError, HttpRequest, read_request, response_bytes

__all__ = [
    "HttpError",
    "HttpRequest",
    "PLAN_REGISTRY_LIMIT",
    "ReproClient",
    "ReproServer",
    "ServerThread",
    "read_request",
    "response_bytes",
]
