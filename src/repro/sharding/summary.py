"""Per-shard partial generating-function summaries.

A shard's contribution to any global rank statistic is fully captured by its
*count-above-threshold* distributions: for a threshold ``θ``, the univariate
generating function of the number of present tuples in the shard whose
realized score exceeds ``θ``.  Because scores are distinct, only the
``n_s + 1`` prefixes of the shard's score-sorted alternative list yield
different distributions, so the whole summary is a truncated
``(n_s + 1) × max_rank`` polynomial table -- one backend sweep for
tuple-independent shards (:meth:`~repro.engine.backends.Backend.\
prefix_count_polynomials`), one memoized Bernoulli product per requested
prefix for block-independent shards.

The ``max_rank``-independent part -- key/score/probability layout, block
structure, the decreasing-score alternative stream -- is extracted once per
shard session (:func:`shard_layout`, memoized as a session artifact and
therefore dropped on invalidation), so summaries at several truncations and
the coordinator's merged key space all share one extraction.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.andxor.nodes import AndNode, Leaf, XorNode
from repro.engine import get_backend
from repro.exceptions import ModelError


class ShardLayout:
    """The truncation-independent layout of one shard.

    One instance per shard session generation, shared by every
    :class:`ShardRankSummary` over that shard and by the coordinator's
    merged key space.
    """

    __slots__ = (
        "independent",
        "keys",
        "probabilities",
        "presence",
        "alternatives",
        "best_score",
        "block_of",
        "triples",
        "key_triples",
        "scores",
    )

    def __init__(self, session: Any) -> None:
        layout = session.independent_tuple_layout()
        if layout is not None:
            self.independent = True
            self.keys: List[Hashable] = [key for key, _, _ in layout]
            self.probabilities: List[float] = [p for _, p, _ in layout]
            self.scores: List[float] = [score for _, _, score in layout]
            self.block_of: Dict[Hashable, int] = {
                key: index for index, key in enumerate(self.keys)
            }
            self.alternatives: Dict[Hashable, List[Tuple[float, float]]] = {
                key: [(score, probability)]
                for key, probability, score in layout
            }
            self.triples: List[Tuple[float, float, int]] = [
                (score, probability, index)
                for index, (_, probability, score) in enumerate(layout)
            ]
            self.key_triples: List[Tuple[float, float, Hashable]] = [
                (score, probability, key)
                for key, probability, score in layout
            ]
            self.presence: Dict[Hashable, float] = dict(
                zip(self.keys, self.probabilities)
            )
            self.best_score: Dict[Hashable, float] = dict(
                zip(self.keys, self.scores)
            )
            return
        self.independent = False
        self._extract_block_layout(session)

    def _extract_block_layout(self, session: Any) -> None:
        """Read the block-independent (BID) layout off the shard's tree."""
        tree = session.tree
        root = tree.root
        if not isinstance(root, AndNode):
            raise ModelError(
                "shard summaries require a tuple-independent or "
                "block-independent database layout"
            )
        self.keys = []
        self.block_of = {}
        self.alternatives = {}
        triples: List[Tuple[float, float, int]] = []
        for child in root.children():
            if not isinstance(child, XorNode):
                raise ModelError(
                    "shard summaries require xor blocks directly under the "
                    "and root (tuple-independent or BID layout)"
                )
            block_key: Optional[Hashable] = None
            alternatives: List[Tuple[float, float]] = []
            for leaf, probability in child.edges():
                if not isinstance(leaf, Leaf):
                    raise ModelError(
                        "shard summaries require leaf-only xor blocks "
                        "(tuple-independent or BID layout)"
                    )
                if block_key is None:
                    block_key = leaf.alternative.key
                elif leaf.alternative.key != block_key:
                    raise ModelError(
                        "shard summaries require same-key alternatives "
                        "within each block (BID layout)"
                    )
                alternatives.append(
                    (session.score_of(leaf.alternative), float(probability))
                )
            if block_key is None:
                continue  # empty block: never produces a tuple
            if block_key in self.block_of:
                raise ModelError(
                    f"duplicate block key {block_key!r} in shard layout"
                )
            block_index = len(self.keys)
            self.keys.append(block_key)
            self.block_of[block_key] = block_index
            self.alternatives[block_key] = alternatives
            triples.extend(
                (score, probability, block_index)
                for score, probability in alternatives
            )
        triples.sort(key=lambda item: -item[0])
        self.triples = triples
        self.key_triples = [
            (score, probability, self.keys[block])
            for score, probability, block in triples
        ]
        self.scores = [score for score, _, _ in triples]
        self.probabilities = [
            sum(p for _, p in self.alternatives[key]) for key in self.keys
        ]
        self.presence = dict(zip(self.keys, self.probabilities))
        self.best_score = {
            key: max(score for score, _ in self.alternatives[key])
            for key in self.keys
        }


def shard_layout(session: Any) -> ShardLayout:
    """The session's memoized :class:`ShardLayout` (one per generation)."""
    return session._memoized(
        "shard_layout", (), lambda: ShardLayout(session)
    )


class ShardRankSummary:
    """Truncated rank-polynomial summary of one database shard.

    Parameters
    ----------
    session:
        The shard's :class:`~repro.session.QuerySession` (tuple-independent
        or block-independent layout; anything else raises
        :class:`~repro.exceptions.ModelError`).
    max_rank:
        Number of coefficients kept per partial polynomial.  Convolving
        truncated partials is exact for every coefficient below the
        truncation point, so ``max_rank = k`` suffices for Top-k answers.
    """

    def __init__(self, session: Any, max_rank: int) -> None:
        self._session = session
        self._max_rank = max(int(max_rank), 1)
        self._backend = get_backend()
        self._layout = shard_layout(session)
        self._prefix_table: Any = None
        self._block_polynomials: Dict[int, List[float]] = {}
        self._excluding_polynomials: Dict[Tuple[int, int], List[float]] = {}
        # Ascending negated scores make "number of scores > θ" a bisect.
        self._neg_scores: List[float] = [
            -score for score in self._layout.scores
        ]

    @classmethod
    def from_layout(
        cls,
        layout: ShardLayout,
        max_rank: int,
        prefix_table: Any = None,
    ) -> "ShardRankSummary":
        """Rebuild a summary from exported state, without a session.

        Used by the process-backed execution layer: a shard worker ships
        its (picklable) :class:`ShardLayout` plus, for tuple-independent
        shards, the dense prefix polynomial table (over a pipe or a
        shared-memory segment); the coordinator reconstructs an equivalent
        summary against the parent's active backend.  A missing
        ``prefix_table`` is recomputed lazily from the layout's
        probabilities -- identical coefficients, just without reusing the
        worker's sweep.
        """
        self = cls.__new__(cls)
        self._session = None
        self._max_rank = max(int(max_rank), 1)
        self._backend = get_backend()
        self._layout = layout
        self._prefix_table = prefix_table
        self._block_polynomials = {}
        self._excluding_polynomials = {}
        self._neg_scores = [-score for score in layout.scores]
        return self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def layout(self) -> ShardLayout:
        """The shared truncation-independent shard layout."""
        return self._layout

    @property
    def is_independent(self) -> bool:
        """True for tuple-independent shards (enables the batched merge)."""
        return self._layout.independent

    @property
    def max_rank(self) -> int:
        """Number of coefficients kept per partial polynomial."""
        return self._max_rank

    def keys(self) -> List[Hashable]:
        """Tuple keys of the shard (decreasing score for independent shards)."""
        return list(self._layout.keys)

    def number_of_tuples(self) -> int:
        return len(self._layout.keys)

    def presence_probability(self, key: Hashable) -> float:
        """``Pr(t present)`` for one tuple key of the shard."""
        return self._layout.presence[key]

    def probabilities(self) -> List[float]:
        """Per-key presence probabilities aligned with :meth:`keys`."""
        return list(self._layout.probabilities)

    def scores(self) -> List[float]:
        """Alternative scores in decreasing order."""
        return list(self._layout.scores)

    def alternatives_of(self, key: Hashable) -> List[Tuple[float, float]]:
        """``(score, probability)`` pairs of one tuple's alternatives."""
        return list(self._layout.alternatives[key])

    def alternative_triples(self) -> List[Tuple[float, float, Hashable]]:
        """All ``(score, probability, key)`` triples, decreasing score."""
        return list(self._layout.key_triples)

    # ------------------------------------------------------------------
    # Partial generating functions
    # ------------------------------------------------------------------
    def prefix_index(self, threshold: float) -> int:
        """Number of shard alternatives scoring strictly above ``threshold``."""
        return bisect_left(self._neg_scores, -threshold)

    def prefix_indices(self, thresholds_desc: List[float]) -> List[int]:
        """:meth:`prefix_index` for a decreasing threshold sequence.

        One backend sweep (two-pointer merge / vectorized bisect) instead
        of a bisect per threshold -- the coordinator calls this with
        another shard's score column.
        """
        return self._backend.descending_prefix_lengths(
            self._layout.scores, thresholds_desc
        )

    @property
    def prefix_table(self) -> Any:
        """The native ``(n_s + 1) × max_rank`` prefix polynomial table.

        Row ``m`` holds the count distribution of the first ``m``
        (score-sorted) tuples; only defined for independent shards, where
        it is produced by one backend sweep.
        """
        if not self._layout.independent:
            raise ModelError(
                "the dense prefix table exists only for tuple-independent "
                "shards; use count_above() on block-independent shards"
            )
        if self._prefix_table is None:
            self._prefix_table = self._backend.prefix_count_polynomials(
                self._layout.probabilities, self._max_rank
            )
        return self._prefix_table

    def _block_masses(self, prefix: int) -> Dict[int, float]:
        """Per-block probability mass among the first ``prefix`` alternatives."""
        masses: Dict[int, float] = {}
        for score, probability, block in self._layout.triples[:prefix]:
            masses[block] = masses.get(block, 0.0) + probability
        return masses

    def prefix_polynomial(self, prefix: int) -> List[float]:
        """Count distribution of the first ``prefix`` alternatives.

        The prefix-indexed form of :meth:`count_above`: two thresholds with
        the same prefix index have identical distributions, so callers that
        already hold prefix indices (the coordinator's per-threshold
        memoization, the grid-aligned tables) skip the bisect.
        """
        if self._layout.independent:
            return self._backend.matrix_row(self.prefix_table, prefix)
        cached = self._block_polynomials.get(prefix)
        if cached is None:
            masses = self._block_masses(prefix)
            cached = _pad(
                self._backend.bernoulli_product(
                    [mass for mass in masses.values() if mass > 0.0],
                    self._max_rank,
                ),
                self._max_rank,
            )
            self._block_polynomials[prefix] = cached
        return cached

    def count_above(self, threshold: float) -> List[float]:
        """Coefficients of the count-above-``threshold`` distribution.

        This is the partial univariate generating function the coordinator
        convolves across shards: coefficient ``j`` is the probability that
        exactly ``j`` tuples of this shard are present with realized score
        above ``threshold`` (truncated at ``max_rank`` coefficients).
        """
        return self.prefix_polynomial(self.prefix_index(threshold))

    def count_table(self) -> Any:
        """The native ``(n_s + 1) × max_rank`` count-above table, both kinds.

        Row ``m`` is :meth:`prefix_polynomial` for prefix ``m``.  For
        tuple-independent shards this is exactly :attr:`prefix_table`; for
        block-independent shards the rows are the memoized Bernoulli
        products, densified once so the incremental merge engine can gather
        grid-aligned rows with one backend call per shard.
        """
        if self._layout.independent:
            return self.prefix_table
        if getattr(self, "_dense_table", None) is None:
            self._dense_table = self._backend.matrix_from_rows(
                [
                    self.prefix_polynomial(prefix)
                    for prefix in range(len(self._layout.scores) + 1)
                ]
            )
        return self._dense_table

    def aligned_count_table(
        self, grid_scores_desc: List[float], indices: Optional[List[int]] = None
    ) -> Any:
        """Rows of :meth:`count_table` aligned with a shared score grid.

        ``grid_scores_desc`` is the coordinator's merged decreasing score
        grid; row ``g`` of the result is this shard's count-above
        distribution at threshold ``grid_scores_desc[g]``.  Pass cached
        ``indices`` (from :meth:`prefix_indices`) to skip the sweep when
        the grid and the shard's scores are both unchanged.
        """
        if indices is None:
            indices = self.prefix_indices(grid_scores_desc)
        return self._backend.take_rows(self.count_table(), indices)

    def count_above_excluding(
        self, threshold: float, key: Hashable
    ) -> List[float]:
        """:meth:`count_above`, with ``key``'s own block left out.

        Used for the shard that owns the query tuple: its other blocks are
        independent of the tuple's realization, but alternatives of the
        tuple's own block are mutually exclusive with it and must not be
        counted.
        """
        prefix = self.prefix_index(threshold)
        block = self._layout.block_of[key]
        if self._layout.independent:
            # With distinct scores a tuple never outscores its own
            # threshold, so the prefix cannot contain the excluded key.
            return self._backend.matrix_row(self.prefix_table, prefix)
        cache_key = (prefix, block)
        cached = self._excluding_polynomials.get(cache_key)
        if cached is None:
            masses = self._block_masses(prefix)
            masses.pop(block, None)
            cached = _pad(
                self._backend.bernoulli_product(
                    [mass for mass in masses.values() if mass > 0.0],
                    self._max_rank,
                ),
                self._max_rank,
            )
            self._excluding_polynomials[cache_key] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "independent" if self._layout.independent else "block"
        return (
            f"ShardRankSummary({len(self._layout.keys)} tuples, "
            f"kind={kind!r}, max_rank={self._max_rank})"
        )


def _pad(coefficients: List[float], length: int) -> List[float]:
    if len(coefficients) >= length:
        return coefficients[:length]
    return coefficients + [0.0] * (length - len(coefficients))


def table_delta_start(
    old_probabilities: List[float], new_probabilities: List[float]
) -> Optional[int]:
    """First prefix-table row invalidated by a probability change.

    Row ``m`` of a prefix count-polynomial table depends only on the first
    ``m`` probabilities, so when two same-score layouts differ first at
    probability index ``d``, rows ``0 .. d`` are identical and only rows
    ``d + 1 ..`` need to cross the process boundary.  Returns ``None``
    when the lists differ in length (no usable delta) and
    ``len + 1`` (an empty suffix) when nothing changed.
    """
    if len(old_probabilities) != len(new_probabilities):
        return None
    for index, (old, new) in enumerate(
        zip(old_probabilities, new_probabilities)
    ):
        if old != new:
            return index + 1
    return len(new_probabilities) + 1
