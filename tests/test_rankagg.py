"""Tests for the classical rank-aggregation substrate."""

from __future__ import annotations

import math
import random
from itertools import permutations

import pytest

from repro.exceptions import ConsensusError, EnumerationLimitError
from repro.rankagg.borda import borda_aggregation, borda_scores
from repro.rankagg.footrule import (
    footrule_distance_between_rankings,
    optimal_footrule_aggregation,
)
from repro.rankagg.kemeny import (
    exact_kemeny_aggregation,
    exact_kemeny_from_preferences,
    kendall_tau_between_rankings,
    pairwise_majority_matrix,
    weighted_kendall_cost,
)
from repro.rankagg.pivot import pivot_aggregation, pivot_rank_aggregation


def random_rankings(seed, items=5, voters=4):
    rng = random.Random(seed)
    universe = [f"i{j}" for j in range(items)]
    rankings = []
    for _ in range(voters):
        ranking = list(universe)
        rng.shuffle(ranking)
        rankings.append((tuple(ranking), rng.uniform(0.5, 2.0)))
    return rankings


class TestKendallAndKemeny:
    def test_kendall_between_rankings(self):
        assert kendall_tau_between_rankings(("a", "b", "c"), ("a", "b", "c")) == 0
        assert kendall_tau_between_rankings(("a", "b", "c"), ("c", "b", "a")) == 3
        with pytest.raises(ConsensusError):
            kendall_tau_between_rankings(("a",), ("b",))

    def test_pairwise_majority(self):
        rankings = [(("a", "b"), 1.0), (("b", "a"), 3.0)]
        matrix = pairwise_majority_matrix(rankings)
        assert matrix[("b", "a")] == pytest.approx(0.75)
        assert matrix[("a", "b")] == pytest.approx(0.25)
        with pytest.raises(ConsensusError):
            pairwise_majority_matrix([(("a", "b"), 0.0)])

    def test_weighted_kendall_cost(self):
        preference = {("a", "b"): 0.8, ("b", "a"): 0.2}
        assert weighted_kendall_cost(("a", "b"), preference) == pytest.approx(0.2)
        assert weighted_kendall_cost(("b", "a"), preference) == pytest.approx(0.8)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_kemeny_is_optimal(self, seed):
        rankings = random_rankings(seed, items=4)
        optimum, cost = exact_kemeny_aggregation(rankings)
        preference = pairwise_majority_matrix(rankings)
        universe = list(optimum)
        for candidate in permutations(universe):
            assert weighted_kendall_cost(candidate, preference) >= cost - 1e-12

    def test_kemeny_enumeration_limit(self):
        rankings = random_rankings(0, items=9)
        with pytest.raises(EnumerationLimitError):
            exact_kemeny_aggregation(rankings, limit=10)

    def test_kemeny_from_preferences_empty(self):
        ranking, cost = exact_kemeny_from_preferences([], {})
        assert ranking == ()
        assert cost == 0.0


class TestFootruleAggregation:
    def test_distance(self):
        assert footrule_distance_between_rankings(("a", "b"), ("b", "a")) == 2
        with pytest.raises(ConsensusError):
            footrule_distance_between_rankings(("a",), ("b",))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_optimal_footrule_is_optimal(self, seed):
        rankings = random_rankings(seed, items=4)
        aggregated, cost = optimal_footrule_aggregation(rankings)
        universe = list(aggregated)

        def total_footrule(candidate):
            return sum(
                weight * footrule_distance_between_rankings(candidate, ranking)
                for ranking, weight in rankings
            )

        assert math.isclose(cost, total_footrule(aggregated), abs_tol=1e-9)
        for candidate in permutations(universe):
            assert total_footrule(candidate) >= cost - 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_footrule_two_approximates_kemeny(self, seed):
        rankings = random_rankings(seed, items=5)
        preference = pairwise_majority_matrix(rankings)
        _, kemeny_cost = exact_kemeny_aggregation(rankings)
        footrule_answer, _ = optimal_footrule_aggregation(rankings)
        footrule_kendall_cost = weighted_kendall_cost(footrule_answer, preference)
        if kemeny_cost == 0:
            assert footrule_kendall_cost == 0
        else:
            assert footrule_kendall_cost <= 2.0 * kemeny_cost + 1e-9

    def test_mismatched_item_sets_rejected(self):
        with pytest.raises(ConsensusError):
            optimal_footrule_aggregation([(("a", "b"), 1.0), (("a", "c"), 1.0)])
        with pytest.raises(ConsensusError):
            optimal_footrule_aggregation([])


class TestPivot:
    def test_unanimous_input_recovered(self):
        rankings = [(("a", "b", "c"), 1.0)] * 3
        assert pivot_rank_aggregation(rankings) == ("a", "b", "c")

    def test_duplicate_items_rejected(self):
        with pytest.raises(ConsensusError):
            pivot_aggregation(["a", "a"], lambda x, y: 0.5)

    def test_randomised_pivot_produces_permutation(self):
        rankings = random_rankings(3, items=6)
        result = pivot_rank_aggregation(rankings, rng=random.Random(0))
        assert sorted(result) == sorted({i for r, _ in rankings for i in r})

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_pivot_reasonable_versus_kemeny(self, seed):
        rankings = random_rankings(seed, items=5)
        preference = pairwise_majority_matrix(rankings)
        _, kemeny_cost = exact_kemeny_aggregation(rankings)
        pivot_answer = pivot_rank_aggregation(rankings)
        pivot_cost = weighted_kendall_cost(pivot_answer, preference)
        total_pairs = 5 * 4 / 2
        # The deterministic pivot is a heuristic; sanity-check that it is
        # never worse than 3x the optimum on these small instances (the
        # classical expected guarantee for random pivoting).
        assert pivot_cost <= max(3.0 * kemeny_cost, 0.35 * total_pairs) + 1e-9


class TestBorda:
    def test_scores(self):
        rankings = [(("a", "b", "c"), 1.0), (("b", "a", "c"), 1.0)]
        scores = borda_scores(rankings)
        assert scores["a"] == pytest.approx(3.0)
        assert scores["b"] == pytest.approx(3.0)
        assert scores["c"] == pytest.approx(0.0)

    def test_aggregation_order(self):
        rankings = [(("a", "b", "c"), 2.0), (("b", "a", "c"), 1.0)]
        assert borda_aggregation(rankings)[0] == "a"

    def test_empty_rejected(self):
        with pytest.raises(ConsensusError):
            borda_scores([])
