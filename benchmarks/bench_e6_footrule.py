"""Experiment E6: the Spearman footrule mean answer (Figure 2 / Section 5.4).

Validates the assignment-based optimum against brute force, checks the
Figure-2 decomposition against enumerated expectations, and measures runtime
as n and k grow.
"""

from __future__ import annotations

import math
import time

from _harness import report
from repro.andxor.enumeration import enumerate_worlds
from repro.andxor.rank_probabilities import RankStatistics
from repro.consensus.topk.footrule import (
    expected_topk_footrule_distance,
    mean_topk_footrule,
)
from repro.core.consensus_bruteforce import brute_force_mean_topk, expected_distance
from repro.core.topk_distances import topk_footrule_distance
from repro.workloads.generators import (
    random_bid_database,
    random_tuple_independent_database,
)


def test_e6_formula_and_optimality(benchmark):
    rows = []
    k = 2
    for seed in range(4):
        database = random_bid_database(
            5, rng=seed, max_alternatives=2, exhaustive=True
        )
        tree = database.tree
        distribution = enumerate_worlds(tree)
        answer, value = mean_topk_footrule(tree, k)
        oracle_value = expected_distance(
            tuple(answer),
            distribution,
            answer_of=lambda w: w.top_k(k),
            distance=lambda a, b: topk_footrule_distance(a, b, k=k),
        )
        _, best = brute_force_mean_topk(
            distribution, k, distance="footrule", candidate_items=tree.keys()
        )
        rows.append((seed, value, oracle_value, best))
        assert math.isclose(value, oracle_value, abs_tol=1e-9)
        assert math.isclose(value, best, abs_tol=1e-9)
    report(
        "E6a",
        "Footrule mean answer: Figure-2 decomposition and optimality (k = 2)",
        ("seed", "assignment value", "enumerated E[d_F]", "brute-force optimum"),
        rows,
        notes=(
            "Reproduces Figure 2: the decomposition equals the true expected "
            "distance (note the sign correction documented in "
            "repro.consensus.topk.footrule)."
        ),
    )
    sample = random_bid_database(5, rng=0, max_alternatives=2, exhaustive=True)
    benchmark(lambda: mean_topk_footrule(sample.tree, k))


def test_e6_runtime_scaling(benchmark):
    rows = []
    for n, k in [(100, 5), (200, 5), (400, 5), (200, 10), (200, 20)]:
        database = random_tuple_independent_database(n, rng=n * k)
        statistics = RankStatistics(database.tree)
        start = time.perf_counter()
        mean_topk_footrule(statistics, k)
        elapsed = time.perf_counter() - start
        rows.append((n, k, elapsed))
    report(
        "E6b",
        "Footrule mean answer runtime (assignment over n tuples x k positions)",
        ("n", "k", "seconds"),
        rows,
    )

    database = random_tuple_independent_database(200, rng=9)
    statistics = RankStatistics(database.tree)
    benchmark(lambda: mean_topk_footrule(statistics, 10))
