"""Minimum-cost flow via successive shortest paths.

The solver repeatedly finds a cheapest augmenting path from the source to the
sink in the residual network (using a queue-based Bellman-Ford, which
tolerates the negative edge costs that arise from the convex group-deviation
costs in Section 6.1) and pushes as much flow as possible along it.  With
integer capacities this terminates with an integral minimum-cost flow of the
requested value, or reports infeasibility.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Tuple

from repro.exceptions import FlowError
from repro.flows.network import FlowNetwork

_INF = float("inf")


def _cheapest_path(
    network: FlowNetwork, source: int, sink: int
) -> Tuple[list, list, list]:
    """Queue-based Bellman-Ford over the residual network.

    Returns ``(distance, previous_vertex, previous_edge)`` arrays; the sink is
    unreachable when ``distance[sink]`` is infinite.
    """
    adjacency = network.adjacency()
    n = network.vertex_count()
    distance = [_INF] * n
    previous_vertex = [-1] * n
    previous_edge = [-1] * n
    in_queue = [False] * n
    distance[source] = 0.0
    queue: deque = deque([source])
    in_queue[source] = True
    iterations = 0
    max_iterations = 4 * n * max(1, network.edge_count())
    while queue:
        iterations += 1
        if iterations > max_iterations:
            raise FlowError(
                "negative-cost cycle detected in the residual network"
            )
        vertex = queue.popleft()
        in_queue[vertex] = False
        for position, edge in enumerate(adjacency[vertex]):
            if edge.capacity <= 0:
                continue
            candidate = distance[vertex] + edge.cost
            if candidate < distance[edge.to] - 1e-12:
                distance[edge.to] = candidate
                previous_vertex[edge.to] = vertex
                previous_edge[edge.to] = position
                if not in_queue[edge.to]:
                    queue.append(edge.to)
                    in_queue[edge.to] = True
    return distance, previous_vertex, previous_edge


def min_cost_flow(
    network: FlowNetwork,
    source: Hashable,
    sink: Hashable,
    required_flow: int,
) -> Tuple[int, float]:
    """Send ``required_flow`` units from ``source`` to ``sink`` at minimum cost.

    Returns ``(flow_sent, total_cost)``.  A :class:`~repro.exceptions.FlowError`
    is raised when the requested amount cannot be routed.

    The network's residual capacities are mutated in place; use
    :meth:`repro.flows.network.FlowNetwork.flow_on` to read the per-edge flow
    afterwards.
    """
    if required_flow < 0:
        raise FlowError("required_flow must be non-negative")
    source_index = network.vertex_index(source)
    sink_index = network.vertex_index(sink)
    adjacency = network.adjacency()
    remaining = int(required_flow)
    total_cost = 0.0
    total_flow = 0
    while remaining > 0:
        distance, previous_vertex, previous_edge = _cheapest_path(
            network, source_index, sink_index
        )
        if distance[sink_index] == _INF:
            raise FlowError(
                f"only {total_flow} of {required_flow} units could be routed"
            )
        # Find the bottleneck along the cheapest path.
        bottleneck = remaining
        vertex = sink_index
        while vertex != source_index:
            edge = adjacency[previous_vertex[vertex]][previous_edge[vertex]]
            bottleneck = min(bottleneck, edge.capacity)
            vertex = previous_vertex[vertex]
        # Push the bottleneck along the path.
        vertex = sink_index
        while vertex != source_index:
            edge = adjacency[previous_vertex[vertex]][previous_edge[vertex]]
            edge.capacity -= bottleneck
            adjacency[edge.to][edge.paired].capacity += bottleneck
            total_cost += bottleneck * edge.cost
            vertex = previous_vertex[vertex]
        total_flow += bottleneck
        remaining -= bottleneck
    return total_flow, total_cost


def max_flow_value(
    network: FlowNetwork, source: Hashable, sink: Hashable
) -> int:
    """Maximum flow value from source to sink (costs ignored).

    Implemented by repeatedly augmenting along cheapest paths, which is
    correct (though not the fastest possible) and keeps the residual
    bookkeeping identical to :func:`min_cost_flow`.
    """
    source_index = network.vertex_index(source)
    sink_index = network.vertex_index(sink)
    adjacency = network.adjacency()
    total_flow = 0
    while True:
        distance, previous_vertex, previous_edge = _cheapest_path(
            network, source_index, sink_index
        )
        if distance[sink_index] == _INF:
            return total_flow
        bottleneck = None
        vertex = sink_index
        while vertex != source_index:
            edge = adjacency[previous_vertex[vertex]][previous_edge[vertex]]
            bottleneck = (
                edge.capacity
                if bottleneck is None
                else min(bottleneck, edge.capacity)
            )
            vertex = previous_vertex[vertex]
        vertex = sink_index
        while vertex != source_index:
            edge = adjacency[previous_vertex[vertex]][previous_edge[vertex]]
            edge.capacity -= bottleneck
            adjacency[edge.to][edge.paired].capacity += bottleneck
            vertex = previous_vertex[vertex]
        total_flow += bottleneck
