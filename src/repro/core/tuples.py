"""Tuple alternatives for probabilistic relations.

A probabilistic relation ``R^P(K; A)`` associates each possible-worlds key
with a set of mutually exclusive *alternatives* -- concrete (key, value)
pairs, at most one of which appears in any single possible world (Section 3.1
of the paper).

For ranking queries every alternative additionally carries a numeric *score*;
when no explicit score is given the value attribute is used as the score if
it is numeric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional


@dataclass(frozen=True, order=True)
class TupleAlternative:
    """One alternative of a probabilistic tuple.

    Attributes
    ----------
    key:
        The possible-worlds key identifying the probabilistic tuple this
        alternative belongs to.  Two alternatives with the same key are
        mutually exclusive in every valid model.
    value:
        The (uncertain) value attribute.
    score:
        Optional explicit score used by ranking queries.  When omitted and
        ``value`` is numeric, the value doubles as the score.
    """

    key: Hashable
    value: Hashable
    score: Optional[float] = field(default=None, compare=True)

    def effective_score(self) -> float:
        """Return the score used for ranking.

        Falls back to the value attribute when no explicit score is set.

        Raises
        ------
        TypeError
            If neither an explicit score nor a numeric value is available.
        """
        if self.score is not None:
            return float(self.score)
        if isinstance(self.value, bool) or not isinstance(
            self.value, (int, float)
        ):
            raise TypeError(
                f"alternative {self!r} has no numeric score; "
                "provide an explicit score for ranking queries"
            )
        return float(self.value)

    def with_score(self, score: float) -> "TupleAlternative":
        """Return a copy of this alternative with the given explicit score."""
        return TupleAlternative(self.key, self.value, float(score))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.score is None:
            return f"({self.key!r}, {self.value!r})"
        return f"({self.key!r}, {self.value!r}, score={self.score})"


def group_alternatives_by_key(
    alternatives: Iterable[TupleAlternative],
) -> Dict[Hashable, List[TupleAlternative]]:
    """Group alternatives by their possible-worlds key, preserving order."""
    grouped: Dict[Hashable, List[TupleAlternative]] = {}
    for alternative in alternatives:
        grouped.setdefault(alternative.key, []).append(alternative)
    return grouped


def distinct_keys(alternatives: Iterable[TupleAlternative]) -> List[Hashable]:
    """Return the distinct keys appearing among ``alternatives`` in order."""
    seen = set()
    keys = []
    for alternative in alternatives:
        if alternative.key not in seen:
            seen.add(alternative.key)
            keys.append(alternative.key)
    return keys


def validate_distinct_scores(
    alternatives: Iterable[TupleAlternative],
) -> None:
    """Raise ``ValueError`` if two alternatives share the same score.

    The paper assumes that no two tuples take the same score, to avoid ties
    in rankings (Section 5).  Ranking algorithms call this validator to fail
    fast on ambiguous inputs.
    """
    seen: Dict[float, TupleAlternative] = {}
    for alternative in alternatives:
        score = alternative.effective_score()
        if score in seen:
            raise ValueError(
                f"alternatives {seen[score]!r} and {alternative!r} share "
                f"score {score}; ranking queries require distinct scores"
            )
        seen[score] = alternative
