"""Incremental cross-shard merge: grid-aligned prefix/suffix partials.

The coordinator recovers exact global rank probabilities by convolving
per-shard count-above-threshold polynomials.  The from-scratch merge pairs
every shard with every other shard -- O(S²) row convolutions -- and
re-derives the merged layout, gathers and sort order on every shard
update.  :class:`MergeEngine` restructures that around partial products on
one shared score grid:

* every shard's count table is gathered once onto the **global descending
  score grid** (the merged layout's alternative stream), so cross-shard
  ``prefix_indices`` lookups index a single shared grid;
* the engine keeps ``prefix[i] = shard_0 ⊛ … ⊛ shard_i`` and
  ``suffix[i] = shard_i ⊛ … ⊛ shard_{S-1}`` rows, keyed by the per-shard
  version tokens, and serves shard ``i``'s "all-others" factor as
  ``prefix[i-1] ⊛ suffix[i+1]`` gathered at the shard's own grid
  positions;
* a full merge costs O(S) row convolutions (≈ ``4·S``) instead of
  ``S·(S-1)``, and swapping one shard's summary recomputes only the
  partial-product rows containing that shard plus each shard's final rank
  rows -- index maps, grid positions, the stacked row order and every
  untouched prefix/suffix row are reused from cache.

Tuple-independent shards take the batched path (local rows are the shard's
own prefix table); block-independent shards build one row per alternative
(own block excluded) and collapse them per key with
:meth:`~repro.engine.backends.Backend.sum_rows_by_group`, so mixed
shardings merge on the same grid machinery.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.sharding.summary import ShardRankSummary


@dataclass(frozen=True)
class MergeStatsSnapshot:
    """Counters of the coordinator's merge engine at one instant.

    ``convolutions`` counts :meth:`~repro.engine.backends.Backend.\
convolve_rows` calls issued by the engine (the backend keeps its own
    independent ``kernel_calls`` tally); ``incremental_merges`` reused
    cached prefix/suffix partials, ``full_merges`` rebuilt the grid state,
    and ``rebuild_merges`` took the legacy from-scratch path
    (``merge_mode="rebuild"`` or a pinned snapshot at a non-live vector).
    Subtracting two snapshots gives the counters of the interval between
    them.
    """

    merges: int = 0
    full_merges: int = 0
    incremental_merges: int = 0
    rebuild_merges: int = 0
    convolutions: int = 0
    partials_reused: int = 0
    layout_patches: int = 0
    layout_rebuilds: int = 0
    snapshot_reads: int = 0
    snapshot_evictions: int = 0

    def __sub__(self, other: "MergeStatsSnapshot") -> "MergeStatsSnapshot":
        return MergeStatsSnapshot(
            **{
                field.name: getattr(self, field.name)
                - getattr(other, field.name)
                for field in fields(self)
            }
        )


class _GridState:
    """Cached partial products for one truncation (``max_rank``)."""

    __slots__ = (
        "backend_name",
        "tokens",
        "scores",
        "grid",
        "index_maps",
        "positions",
        "aligned",
        "prefix",
        "suffix",
        "others",
        "others_keys",
        "finals",
        "final_keys",
        "locals",
        "local_keys",
        "order",
        "keys",
    )

    def __init__(self, shard_count: int) -> None:
        self.backend_name: str = ""
        self.tokens: Tuple[Any, ...] = ()
        self.scores: List[List[float]] = []
        self.grid: List[float] = []
        self.index_maps: List[Any] = []
        self.positions: List[Any] = []
        self.aligned: List[Any] = [None] * shard_count
        self.prefix: List[Any] = [None] * shard_count
        self.suffix: List[Any] = [None] * shard_count
        self.others: List[Any] = [None] * shard_count
        self.others_keys: List[Any] = [None] * shard_count
        self.finals: List[Any] = [None] * shard_count
        self.final_keys: List[Any] = [None] * shard_count
        #: Per-shard ``(local_rows, scale_factors, groups)`` -- everything
        #: in the final-rows computation that depends only on the shard's
        #: own content, cached by version token.
        self.locals: List[Any] = [None] * shard_count
        self.local_keys: List[Any] = [None] * shard_count
        self.order: Any = []
        self.keys: List[Hashable] = []


class MergeEngine:
    """Versioned prefix/suffix partial-product cache behind a coordinator.

    One engine per coordinator, one :class:`_GridState` per requested
    truncation (bounded LRU).  The engine only ever serves the *live*
    version vector -- pinned snapshot readers at older vectors merge from
    scratch so they cannot thrash the partials of current traffic.
    """

    def __init__(self, state_limit: int = 8) -> None:
        self._states: "OrderedDict[int, _GridState]" = OrderedDict()
        self._state_limit = max(1, state_limit)
        self.counters: Dict[str, int] = {
            field.name: 0 for field in fields(MergeStatsSnapshot)
        }

    def stats(self) -> MergeStatsSnapshot:
        """An immutable snapshot of the engine's counters."""
        return MergeStatsSnapshot(**self.counters)

    def clear(self) -> None:
        """Drop every cached grid state (explicit invalidation)."""
        self._states.clear()

    # ------------------------------------------------------------------
    # Merge entry point
    # ------------------------------------------------------------------
    def merge(
        self,
        summaries: Sequence[ShardRankSummary],
        tokens: Sequence[Any],
        max_rank: int,
        grid_scores: List[float],
        keys_order: List[Hashable],
        backend: Any,
    ) -> Tuple[List[Hashable], Any]:
        """Merge shard summaries into the global rank rows.

        ``tokens`` are per-shard version tokens aligned with ``summaries``;
        they key every cached partial, so an unchanged token means the
        shard's cached contribution is reused verbatim.  Returns
        ``(keys, native_matrix)`` with rows in merged decreasing-score
        order (``keys_order``).
        """
        self.counters["merges"] += 1
        tokens = tuple(tokens)
        count = len(summaries)
        state = self._states.get(max_rank)
        if state is not None and not self._compatible(
            state, summaries, tokens, backend
        ):
            state = None
        if state is None:
            state = self._build_grid(
                summaries, max_rank, grid_scores, keys_order, backend, count
            )
            self._states[max_rank] = state
            self.counters["full_merges"] += 1
        else:
            self._refresh_chains(state, summaries, tokens, max_rank, backend)
            self.counters["incremental_merges"] += 1
        self._states.move_to_end(max_rank)
        while len(self._states) > self._state_limit:
            self._states.popitem(last=False)
        state.tokens = tokens
        parts = [
            self._shard_final(state, index, summary, tokens, max_rank, backend)
            for index, summary in enumerate(summaries)
        ]
        native = backend.stack_matrices(parts)
        native = backend.take_rows(native, state.order)
        return state.keys, native

    # ------------------------------------------------------------------
    # Grid state construction / refresh
    # ------------------------------------------------------------------
    def _compatible(
        self,
        state: _GridState,
        summaries: Sequence[ShardRankSummary],
        tokens: Tuple[Any, ...],
        backend: Any,
    ) -> bool:
        """Whether the cached state's grid still describes these shards.

        A probability-only update keeps every score in place, so the grid,
        index maps and positions all stay valid; a score update (or a
        shard-count / backend change) moves grid rows and forces a full
        rebuild.
        """
        if state.backend_name != backend.name:
            return False
        if len(state.tokens) != len(tokens):
            return False
        for cached, summary in zip(state.scores, summaries):
            fresh = summary.layout.scores
            if fresh is not cached and fresh != cached:
                return False
        return True

    def _build_grid(
        self,
        summaries: Sequence[ShardRankSummary],
        max_rank: int,
        grid_scores: List[float],
        keys_order: List[Hashable],
        backend: Any,
        count: int,
    ) -> _GridState:
        state = _GridState(count)
        state.backend_name = backend.name
        state.grid = grid_scores
        state.scores = [summary.layout.scores for summary in summaries]
        state.index_maps = [
            backend.index_vector(summary.prefix_indices(grid_scores))
            for summary in summaries
        ]
        # A shard's own scores are a subsequence of the grid, so "grid
        # entries strictly above each score" is exactly each score's grid
        # position (scores are globally distinct).
        state.positions = [
            backend.index_vector(
                backend.descending_prefix_lengths(grid_scores, scores)
            )
            for scores in state.scores
        ]
        for index, summary in enumerate(summaries):
            state.aligned[index] = summary.aligned_count_table(
                grid_scores, state.index_maps[index]
            )
        self._chain(state, range(0, count - 1), range(count - 1, 0, -1),
                    max_rank, backend)
        stacked_keys: List[Hashable] = []
        for summary in summaries:
            stacked_keys.extend(summary.layout.keys)
        position_of = {key: row for row, key in enumerate(stacked_keys)}
        state.order = backend.index_vector(
            [position_of[key] for key in keys_order]
        )
        state.keys = list(keys_order)
        return state

    def _refresh_chains(
        self,
        state: _GridState,
        summaries: Sequence[ShardRankSummary],
        tokens: Tuple[Any, ...],
        max_rank: int,
        backend: Any,
    ) -> None:
        """Re-gather changed shards and recompute only the stale chain rows.

        ``prefix[i]`` contains shards ``0..i`` and is stale iff ``i ≥``
        the lowest changed shard; ``suffix[i]`` contains ``i..S-1`` and is
        stale iff ``i ≤`` the highest changed one.  Everything else is
        reused from cache.
        """
        changed = [
            index
            for index, token in enumerate(tokens)
            if token != state.tokens[index]
        ]
        if not changed:
            return
        for index in changed:
            state.aligned[index] = summaries[index].aligned_count_table(
                state.grid, state.index_maps[index]
            )
            # Re-anchor the identity check so the next merge's compatibility
            # probe hits on ``is`` instead of an O(n) list compare.
            state.scores[index] = summaries[index].layout.scores
        count = len(tokens)
        low, high = min(changed), max(changed)
        self._chain(
            state,
            range(low, count - 1),
            range(min(high, count - 1), 0, -1),
            max_rank,
            backend,
        )

    def _chain(
        self,
        state: _GridState,
        prefix_range: Any,
        suffix_range: Any,
        max_rank: int,
        backend: Any,
    ) -> None:
        """(Re)compute prefix rows over ``prefix_range`` ascending and
        suffix rows over ``suffix_range`` descending.

        ``prefix[S-1]`` / ``suffix[0]`` cover all shards and are never
        consumed, so the ranges stop one short of them.
        """
        count = len(state.aligned)
        for index in prefix_range:
            if index == 0:
                state.prefix[0] = state.aligned[0]
            else:
                state.prefix[index] = self._convolve(
                    state.prefix[index - 1],
                    state.aligned[index],
                    max_rank,
                    backend,
                )
        for index in suffix_range:
            if index == count - 1:
                state.suffix[index] = state.aligned[index]
            else:
                state.suffix[index] = self._convolve(
                    state.aligned[index],
                    state.suffix[index + 1],
                    max_rank,
                    backend,
                )

    # ------------------------------------------------------------------
    # Per-shard finals
    # ------------------------------------------------------------------
    def _shard_final(
        self,
        state: _GridState,
        index: int,
        summary: ShardRankSummary,
        tokens: Tuple[Any, ...],
        max_rank: int,
        backend: Any,
    ) -> Any:
        """Shard ``index``'s final rank rows, reused when nothing moved."""
        count = len(tokens)
        others_key = tokens[:index] + tokens[index + 1 :]
        if state.others_keys[index] != others_key:
            state.others[index] = self._others_rows(
                state, index, count, max_rank, backend
            )
            state.others_keys[index] = others_key
        else:
            self.counters["partials_reused"] += 1
        final_key = (tokens[index], others_key)
        if state.final_keys[index] != final_key:
            if state.local_keys[index] != tokens[index]:
                state.locals[index] = self._local_parts(summary, backend)
                state.local_keys[index] = tokens[index]
            state.finals[index] = self._final_rows(
                state.locals[index], state.others[index], max_rank, backend
            )
            state.final_keys[index] = final_key
        else:
            self.counters["partials_reused"] += 1
        return state.finals[index]

    def _others_rows(
        self,
        state: _GridState,
        index: int,
        count: int,
        max_rank: int,
        backend: Any,
    ) -> Any:
        """``prefix[index-1] ⊛ suffix[index+1]`` at the shard's positions."""
        positions = state.positions[index]
        left = (
            backend.take_rows(state.prefix[index - 1], positions)
            if index > 0
            else None
        )
        right = (
            backend.take_rows(state.suffix[index + 1], positions)
            if index < count - 1
            else None
        )
        if left is None:
            return right
        if right is None:
            return left
        return self._convolve(left, right, max_rank, backend)

    def _local_parts(
        self, summary: ShardRankSummary, backend: Any
    ) -> Tuple[Any, Any, Any]:
        """The shard-content-only inputs of :meth:`_final_rows`.

        ``(local_rows, scale_factors, groups)`` where ``groups`` is
        ``None`` for tuple-independent shards and ``(group_vector,
        group_count)`` for block-independent ones.  Depends only on the
        shard's own summary, so it is cached per version token and an
        incremental re-merge rebuilds it for the changed shard alone.
        """
        layout = summary.layout
        if layout.independent:
            local = backend.take_rows(
                summary.prefix_table, range(len(layout.keys))
            )
            factors = backend.factor_vector(layout.probabilities)
            return local, factors, None
        # Block-independent: one row per alternative (own block excluded),
        # scaled by the alternative's probability and summed per key.
        triples = layout.triples
        local = backend.matrix_from_rows(
            [
                summary.count_above_excluding(score, layout.keys[block])
                for score, _, block in triples
            ]
        )
        factors = backend.factor_vector(
            [probability for _, probability, _ in triples]
        )
        groups = (
            backend.index_vector([block for _, _, block in triples]),
            len(layout.keys),
        )
        return local, factors, groups

    def _final_rows(
        self,
        local_parts: Tuple[Any, Any, Any],
        others_rows: Any,
        max_rank: int,
        backend: Any,
    ) -> Any:
        """Local rank rows ⊛ all-others factor, collapsed to per-key rows."""
        local, factors, groups = local_parts
        rows = (
            self._convolve(local, others_rows, max_rank, backend)
            if others_rows is not None
            else local
        )
        rows = backend.scale_rows(rows, factors)
        if groups is None:
            return rows
        return backend.sum_rows_by_group(rows, groups[0], groups[1])

    def _convolve(
        self, a: Any, b: Any, out_len: int, backend: Any
    ) -> Any:
        self.counters["convolutions"] += 1
        return backend.convolve_rows(a, b, out_len)
