"""Wire-format query requests for the serving layer.

A :class:`QueryRequest` is the string-keyed wire form of one consensus
query.  Since the declarative API landed, it is a thin veneer: every
request converts to exactly one :class:`~repro.query.ConsensusQuery`
(:meth:`QueryRequest.to_query`), and all execution -- including the
executor's request coalescing, which keys on the query objects' stable
hash -- goes through the hardness-aware planner.  The hand-rolled
ten-entry dispatch table this module used to carry is gone;
``QUERY_KINDS`` lists the supported wire kinds (one per legacy dispatch
entry), and accessing the old ``QUERY_DISPATCH`` name lazily rebuilds an
equivalent mapping with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

from repro.exceptions import ConsensusError
from repro.query.builder import ConsensusQuery
from repro.query.compat import LEGACY_KINDS, query_for_kind
from repro.query.compat import required_max_rank as _query_required_max_rank
from repro.query.planner import DEFAULT_PLANNER
from repro.session import QuerySession

#: The supported wire kinds (the former dispatch-table keys).
QUERY_KINDS: Tuple[str, ...] = LEGACY_KINDS


@dataclass(frozen=True)
class QueryRequest:
    """One consensus query on the wire: a kind, an answer size, parameters."""

    kind: str
    k: Optional[int] = None
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @staticmethod
    def make(kind: str, k: Optional[int] = None, **params: Any) -> "QueryRequest":
        """Build a request with canonically ordered extra parameters."""
        return QueryRequest(kind, k, tuple(sorted(params.items())))

    @staticmethod
    def from_query(query: ConsensusQuery) -> "QueryRequest":
        """The wire form of a declarative query (kind string + k + params).

        Only queries that round-trip losslessly have a wire form: the kind
        must be one of :data:`QUERY_KINDS` and the Monte-Carlo sizing
        fields must be at their defaults (the legacy wire format cannot
        carry them).  Anything else raises
        :class:`~repro.exceptions.ConsensusError` instead of silently
        truncating the query.
        """
        kind = query.kind
        if kind not in QUERY_KINDS:
            raise ConsensusError(
                f"query {kind!r} has no legacy wire form; submit the "
                "ConsensusQuery object itself"
            )
        if query.target_epsilon is not None or query.sample_cap is not None:
            raise ConsensusError(
                "the legacy wire format cannot carry Monte-Carlo sizing "
                "(epsilon / sample cap); submit the ConsensusQuery object "
                "itself"
            )
        return QueryRequest(kind, query.k, query.params)

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_query(self) -> ConsensusQuery:
        """The :class:`ConsensusQuery` this request denotes.

        Raises :class:`~repro.exceptions.ConsensusError` on unknown kinds
        or a missing required ``k`` (the legacy dispatch errors).
        """
        return query_for_kind(self.kind, self.k, self.params)

    # ------------------------------------------------------------------
    # Wire form (loss-free JSON; see repro.query.wire)
    # ------------------------------------------------------------------
    def to_wire(self) -> dict:
        """The JSON-safe wire document of this request.

        Parameter values travel through the loss-free tagged codec, so
        non-JSON-native values (tuples, non-string dict keys) round-trip
        exactly; :meth:`from_wire` rebuilds an equal request.
        """
        from repro.query.wire import encode_value

        return {
            "kind": self.kind,
            "k": self.k,
            "params": [
                [name, encode_value(value)] for name, value in self.params
            ],
        }

    def to_json(self) -> str:
        """:meth:`to_wire` rendered as canonical JSON text."""
        from repro.query.wire import dumps

        return dumps(self.to_wire())

    @staticmethod
    def from_wire(data: dict) -> "QueryRequest":
        """Rebuild a request from its wire document (inverse of
        :meth:`to_wire`); malformed documents raise
        :class:`~repro.exceptions.ConsensusError`."""
        from repro.query.wire import decode_value

        if not isinstance(data, dict):
            raise ConsensusError(
                f"a wire request must be a JSON object, got "
                f"{type(data).__name__!r}"
            )
        kind = data.get("kind")
        if not isinstance(kind, str):
            raise ConsensusError(
                f"a wire request needs a string 'kind', got {kind!r}"
            )
        k = data.get("k")
        if k is not None and not isinstance(k, int):
            raise ConsensusError(f"wire request 'k' must be an int, got {k!r}")
        params = data.get("params", [])
        if not isinstance(params, (list, tuple)):
            raise ConsensusError(
                "wire request 'params' must be an array of [name, value] "
                "pairs"
            )
        try:
            decoded = tuple(
                sorted(
                    (str(name), decode_value(value)) for name, value in params
                )
            )
        except (TypeError, ValueError) as error:
            raise ConsensusError(
                f"malformed wire request params: {error}"
            ) from None
        return QueryRequest(kind, k, decoded)

    @staticmethod
    def from_json(text: str) -> "QueryRequest":
        """Parse :meth:`to_json` output back into a request."""
        from repro.query.wire import loads

        return QueryRequest.from_wire(loads(text))


def as_query(
    request: Union[QueryRequest, ConsensusQuery]
) -> ConsensusQuery:
    """Normalize a wire request or declarative query to a query object."""
    if isinstance(request, ConsensusQuery):
        return request
    return request.to_query()


def execute_request(
    session: QuerySession, request: Union[QueryRequest, ConsensusQuery]
) -> Any:
    """Deprecated: run one request against a (coordinator) session.

    Kept for source compatibility with the dispatch-table era; equivalent
    to ``request.to_query().execute(session).value`` (but skips the answer
    wrapping).  Prefer :meth:`ConsensusQuery.execute`.
    """
    warnings.warn(
        "repro.serving.execute_request() is deprecated; use "
        "ConsensusQuery.execute(session) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return DEFAULT_PLANNER.run(as_query(request), session)


def required_max_rank(
    request: Union[QueryRequest, ConsensusQuery]
) -> Optional[int]:
    """Rank-matrix truncation a request needs, for shard summary pre-warming.

    ``None`` for kinds that never touch the merged rank matrix.
    """
    return _query_required_max_rank(as_query(request))


def __getattr__(name: str) -> Any:
    # The dispatch table is gone; legacy importers get a synthesized
    # equivalent (every kind routed through the planner) plus a warning.
    if name == "QUERY_DISPATCH":
        warnings.warn(
            "repro.serving.requests.QUERY_DISPATCH is deprecated; the "
            "dispatch table was replaced by ConsensusQuery.execute() -- "
            "iterate QUERY_KINDS instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            kind: (
                lambda session, request: DEFAULT_PLANNER.run(
                    as_query(request), session
                )
            )
            for kind in QUERY_KINDS
        }
    raise AttributeError(name)
