"""Tuple-independent probabilistic databases.

The simplest probabilistic database model: every tuple appears independently
with its own probability.  This is the model for which the paper's Jaccard
mean-world algorithm (Section 4.2) is stated.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.andxor.builders import tuple_independent_tree
from repro.core.tuples import TupleAlternative
from repro.exceptions import ProbabilityError
from repro.models.relation import ProbabilisticRelation


class TupleIndependentDatabase(ProbabilisticRelation):
    """A tuple-independent probabilistic relation.

    Parameters
    ----------
    tuples:
        Iterable of ``(key, value, probability)`` triples or
        ``(key, value, score, probability)`` quadruples.
    name:
        Optional relation name.
    """

    def __init__(
        self,
        tuples: Iterable[Tuple],
        name: str = "tuple_independent",
    ) -> None:
        specs: List[Tuple[TupleAlternative, float]] = []
        self._probabilities: Dict[Hashable, float] = {}
        for item in tuples:
            if len(item) == 3:
                key, value, probability = item
                alternative = TupleAlternative(key, value)
            elif len(item) == 4:
                key, value, score, probability = item
                alternative = TupleAlternative(key, value, score)
            else:
                raise ProbabilityError(
                    "expected (key, value, probability) or "
                    f"(key, value, score, probability), got {item!r}"
                )
            if key in self._probabilities:
                raise ProbabilityError(
                    f"duplicate key {key!r} in a tuple-independent database"
                )
            specs.append((alternative, float(probability)))
            self._probabilities[key] = float(probability)
        super().__init__(tuple_independent_tree(specs), name=name)

    def tuple_probabilities(self) -> Dict[Hashable, float]:
        """The per-key presence probabilities as given at construction."""
        return dict(self._probabilities)
