"""Query-session layer: shared statistics across consensus queries.

The paper's workload is many consensus queries -- Top-k answers under the
symmetric difference / intersection / footrule / Kendall metrics, Jaccard and
set consensus worlds, parameterized ranking functions, baseline semantics --
asked against the *same* probabilistic database.  Every one of those
algorithms consumes a small set of expensive shared artifacts: the batched
:class:`~repro.engine.RankMatrix`, its cumulative view, the Top-k membership
vector, the :class:`~repro.engine.PairwisePreferenceMatrix`, the
expected-rank table and the Jaccard prefix scan.

:class:`QuerySession` computes each artifact lazily, memoizes it, and hands
backend-native views to every consumer, so a warm session answers a second
consensus query (a different distance over the same tree) without
recomputing anything.  Cache behaviour is observable through
:attr:`QuerySession.cache_hits` / :attr:`QuerySession.cache_misses` /
:meth:`QuerySession.cache_info`, and :meth:`QuerySession.invalidate` (or
:meth:`QuerySession.set_scoring`) drops every artifact when the scores
change so stale statistics are never served.

All module-level consensus functions accept a session wherever they accept a
tree or :class:`~repro.andxor.rank_probabilities.RankStatistics`; passing a
tree simply builds a throwaway session, so the public API stays
source-compatible.  One session per database shard is the unit the future
sharded / async serving layers will hold on to.

>>> from repro import QuerySession, TupleIndependentDatabase
>>> database = TupleIndependentDatabase(
...     [("t1", 90, 0.6), ("t2", 80, 1.0), ("t3", 70, 0.5)]
... )
>>> session = QuerySession(database.tree)
>>> session.mean_topk_symmetric_difference(2)[0]  # cold: computes
('t1', 't2')
>>> session.mean_topk_footrule(2)[0]              # warm: reuses rank matrix
('t1', 't2')
>>> session.cache_hits > 0
True
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.andxor.rank_probabilities import RankStatistics, ScoringFunction
from repro.andxor.tree import AndXorTree
from repro.core.tuples import TupleAlternative
from repro.engine import PairwisePreferenceMatrix, RankMatrix, get_backend

SessionSource = Union[AndXorTree, RankStatistics, "QuerySession"]

#: Cache key of one memoized artifact: (artifact name, parameter tuple).
ArtifactKey = Tuple[str, Tuple[Any, ...]]

#: Process-wide session identities for result-cache keys.  ``id()`` is
#: unsafe (addresses are recycled after garbage collection); a monotone
#: counter never aliases two sessions within one process.
_SESSION_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class ArtifactCounters:
    """Hit/miss counters of one memoized artifact family."""

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        """Total artifact requests (hits + misses)."""
        return self.hits + self.misses

    def __getitem__(self, field_name: str) -> int:
        # Mapping-style access keeps pre-dataclass consumers working.
        if field_name in ("hits", "misses"):
            return getattr(self, field_name)
        raise KeyError(field_name)

    def __add__(self, other: "ArtifactCounters") -> "ArtifactCounters":
        return ArtifactCounters(
            self.hits + other.hits, self.misses + other.misses
        )


@dataclass(frozen=True)
class CacheInfo:
    """Stable snapshot of a session's cache counters.

    Returned by :meth:`QuerySession.cache_info` (and, aggregated across
    shards, by :meth:`repro.models.sharded.ShardedDatabase.cache_info`).
    Field access is the API; ``info["hits"]``-style mapping access is kept
    for source compatibility with the pre-dataclass dictionary form.
    """

    hits: int = 0
    misses: int = 0
    entries: int = 0
    generation: int = 0
    backend: str = ""
    artifacts: Mapping[str, ArtifactCounters] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Total artifact requests (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache (0.0 when idle)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def __getitem__(self, field_name: str) -> Any:
        if field_name in (
            "hits", "misses", "entries", "generation", "backend", "artifacts"
        ):
            return getattr(self, field_name)
        raise KeyError(field_name)

    def __add__(self, other: "CacheInfo") -> "CacheInfo":
        """Roll two snapshots up into one (per-artifact counters merged)."""
        merged: Dict[str, ArtifactCounters] = dict(self.artifacts)
        for name, counters in other.artifacts.items():
            merged[name] = merged.get(name, ArtifactCounters()) + counters
        backend = self.backend if self.backend else other.backend
        if other.backend and other.backend != backend:
            backend = "mixed"
        return CacheInfo(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            entries=self.entries + other.entries,
            generation=self.generation + other.generation,
            backend=backend,
            artifacts=merged,
        )


class QuerySession:
    """Memoized statistics shared by every consensus query on one database.

    Parameters
    ----------
    source:
        The and/xor tree, or an existing
        :class:`~repro.andxor.rank_probabilities.RankStatistics` to adopt.
    scoring:
        Optional scoring function overriding
        :meth:`~repro.core.tuples.TupleAlternative.effective_score`.  Only
        allowed when ``source`` is a tree (an adopted statistics object
        already fixed its scores).
    validate_scores:
        Forwarded to :class:`RankStatistics`: require pairwise-distinct
        scores across tuples (the paper's no-ties assumption).
    """

    def __init__(
        self,
        source: SessionSource,
        scoring: Optional[ScoringFunction] = None,
        validate_scores: bool = True,
    ) -> None:
        if isinstance(source, QuerySession):
            raise TypeError(
                "source is already a QuerySession; use it directly "
                "(or repro.session.as_session)"
            )
        if isinstance(source, RankStatistics):
            if scoring is not None:
                raise ValueError(
                    "cannot re-score an existing RankStatistics; pass the "
                    "tree instead"
                )
            self._tree = source.tree
            self._statistics: Optional[RankStatistics] = source
            self._adopted = True
            # Adopt the statistics object's construction settings so that
            # invalidate() rebuilds an equivalent object (same scoring,
            # same validation / fast-path flags) rather than the defaults.
            scoring = source._scoring
            validate_scores = source._validate_scores_flag
            self._use_fast_path = source._use_fast_path_flag
        elif isinstance(source, AndXorTree):
            self._tree = source
            self._statistics = None
            self._adopted = False
            self._use_fast_path = True
        else:
            raise TypeError(
                "expected an AndXorTree or RankStatistics, got "
                f"{type(source).__name__}"
            )
        self._scoring = scoring
        self._validate_scores = validate_scores
        self._init_cache_state()

    def _init_cache_state(self) -> None:
        """Initialise the memoization machinery (shared with subclasses)."""
        self._cache: Dict[ArtifactKey, Any] = {}
        self._hits = 0
        self._misses = 0
        self._artifact_hits: Dict[str, int] = {}
        self._artifact_misses: Dict[str, int] = {}
        self._generation = 0
        self._session_token = next(_SESSION_TOKENS)
        self._cache_backend = get_backend().name

    # ------------------------------------------------------------------
    # Cache machinery
    # ------------------------------------------------------------------
    def _memoized(
        self, artifact: str, params: Tuple[Any, ...], compute: Callable[[], Any]
    ) -> Any:
        backend = get_backend().name
        if backend != self._cache_backend:
            # The compute backend switched under a warm session: every
            # cached artifact is shaped for the previous backend's
            # kernels (numpy arrays vs list-of-lists), so the whole
            # cache rebuilds.  The generation bump also rotates the
            # session's version token, keeping result caches from
            # replaying answers across the switch.
            self.invalidate()
            self._cache_backend = backend
        key: ArtifactKey = (artifact, params)
        if key in self._cache:
            self._hits += 1
            self._artifact_hits[artifact] = (
                self._artifact_hits.get(artifact, 0) + 1
            )
            return self._cache[key]
        self._misses += 1
        self._artifact_misses[artifact] = (
            self._artifact_misses.get(artifact, 0) + 1
        )
        value = compute()
        self._cache[key] = value
        return value

    @property
    def cache_hits(self) -> int:
        """Number of artifact requests served from the session cache."""
        return self._hits

    @property
    def cache_misses(self) -> int:
        """Number of artifact requests that had to compute."""
        return self._misses

    @property
    def generation(self) -> int:
        """Bumped by every :meth:`invalidate` / :meth:`set_scoring` call."""
        return self._generation

    def version_token(self, versions: Any = None) -> Tuple[Any, ...]:
        """A hashable token identifying the state answers depend on.

        Result caches key completed answers by query fingerprint plus
        this token: any change that could alter an answer -- an
        :meth:`invalidate`, a :meth:`set_scoring`, or (on the sharded
        coordinator, which overrides this) a shard version bump -- must
        change the token, so stale answers are never served.  The session
        token keeps two sessions' entries distinct inside one shared
        cache.  ``versions`` is accepted for signature compatibility with
        the sharded override; a local session has no shard vector.
        """
        return ("local", self._session_token, self._generation)

    def cache_info(self) -> CacheInfo:
        """Aggregate and per-artifact hit/miss counters plus backend name.

        Returns a stable :class:`CacheInfo` dataclass (mapping-style access
        is kept for compatibility with the earlier dictionary form).
        """
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            entries=len(self._cache),
            generation=self._generation,
            backend=get_backend().name,
            artifacts={
                name: ArtifactCounters(
                    hits=self._artifact_hits.get(name, 0),
                    misses=self._artifact_misses.get(name, 0),
                )
                for name in sorted(
                    set(self._artifact_hits) | set(self._artifact_misses)
                )
            },
        )

    def invalidate(self) -> None:
        """Drop every memoized artifact (and the statistics cache behind it).

        Call after anything that changes the scores the session was built
        with; the next artifact request recomputes from the tree instead of
        serving stale results.  Hit/miss counters are cumulative across
        invalidations; :attr:`generation` records how often the session was
        reset.
        """
        self._cache.clear()
        self._statistics = None
        self._generation += 1

    def set_scoring(self, scoring: Optional[ScoringFunction]) -> None:
        """Replace the scoring function and invalidate every artifact.

        Only allowed on sessions built from a tree: a session that adopted
        an existing :class:`RankStatistics` must stay score-consistent with
        it, because module-level calls against that statistics object route
        through this session.
        """
        if self._adopted:
            raise ValueError(
                "cannot re-score a session adopting an existing "
                "RankStatistics (module-level calls against that object "
                "share this session); build a QuerySession from the tree "
                "instead"
            )
        self._scoring = scoring
        self.invalidate()

    # ------------------------------------------------------------------
    # Database accessors
    # ------------------------------------------------------------------
    @property
    def tree(self) -> AndXorTree:
        """The underlying and/xor tree."""
        return self._tree

    @property
    def deployment(self) -> str:
        """Deployment kind for the query planner (``local`` here;
        overridden by the sharded coordinator)."""
        return "local"

    def layout_kind(self) -> str:
        """``tuple-independent`` / ``bid`` / ``general`` model layout.

        The query planner uses this to match queries against the paper's
        model-specific results (e.g. Lemma 2's tuple-independent prefix
        structure for the mean Jaccard world).  Detection is structural
        first (score-free, so set-level queries work on unscored trees);
        trees the builders did not shape may still expose a
        tuple-independent layout through the rank statistics.
        """
        from repro.query.planner import layout_of_tree

        kind = layout_of_tree(self._tree)
        if kind == "general":
            try:
                if self.statistics.independent_tuple_layout() is not None:
                    return "tuple-independent"
            except TypeError:
                pass  # unscored tree: set-level queries only
        return kind

    def execute(self, query: Any, rng: Any = None) -> Any:
        """Execute a :class:`~repro.query.ConsensusQuery` on this session.

        Returns a :class:`~repro.query.QueryAnswer`; the planner picks the
        execution path (see :meth:`explain`).
        """
        return query.execute(self, rng=rng)

    def explain(self, query: Any) -> str:
        """Render the planner's execution path for a query on this session."""
        return query.explain(self)

    @property
    def statistics(self) -> RankStatistics:
        """The rank statistics the session is built on (lazily created)."""
        if self._statistics is None:
            self._statistics = RankStatistics(
                self._tree,
                validate_scores=self._validate_scores,
                use_fast_path=self._use_fast_path,
                scoring=self._scoring,
            )
        return self._statistics

    def keys(self) -> List[Hashable]:
        """The tuple keys of the database."""
        return self.statistics.keys()

    def alternatives_of(self, key: Hashable) -> List[TupleAlternative]:
        """The alternatives of one tuple key.

        Overridden by the sharded coordinator to serve the owning shard's
        alternatives without materializing a merged tree.
        """
        return self._tree.alternatives_of(key)

    def number_of_tuples(self) -> int:
        """Number of distinct tuple keys."""
        return self.statistics.number_of_tuples()

    def score_of(self, alternative: TupleAlternative) -> float:
        """The ranking score of an alternative under the active scoring."""
        return self.statistics.score_of(alternative)

    def best_scores(
        self, keys: Sequence[Hashable]
    ) -> Dict[Hashable, float]:
        """Best (maximum) alternative score per tuple key.

        The hot consumer is :func:`repro.consensus.topk.common.\
        order_by_score`; the sharded coordinator overrides this to answer
        from its merged layout so ordering candidate keys never
        materializes shard trees.
        """
        return {
            key: max(
                self.score_of(alternative)
                for alternative in self.alternatives_of(key)
            )
            for key in keys
        }

    def independent_tuple_layout(
        self,
    ) -> Optional[List[Tuple[Hashable, float, float]]]:
        """``(key, probability, score)`` triples for tuple-independent
        databases (sorted by decreasing score), else None."""
        return self.statistics.independent_tuple_layout()

    def _validate_k(self, k: int) -> int:
        # Lazy import: common imports this module at load time, so the
        # shared validator (one source of truth for the rule and its error
        # messages) can only be pulled in here, at call time.
        from repro.consensus.topk.common import validate_k

        return validate_k(self, k)

    # ------------------------------------------------------------------
    # Shared statistics artifacts
    # ------------------------------------------------------------------
    def rank_matrix(self, max_rank: Optional[int] = None) -> RankMatrix:
        """The memoized ``n_tuples × max_rank`` rank-probability matrix."""
        if max_rank is None:
            max_rank = self.number_of_tuples()
        return self._memoized(
            "rank_matrix",
            (max_rank,),
            lambda: self.statistics.rank_matrix(max_rank),
        )

    def cumulative_rank_matrix(
        self, max_rank: Optional[int] = None
    ) -> RankMatrix:
        """The memoized cumulative (``Pr(r(t) <= i)``) view."""
        if max_rank is None:
            max_rank = self.number_of_tuples()
        return self._memoized(
            "cumulative_rank_matrix",
            (max_rank,),
            lambda: self.rank_matrix(max_rank).cumulative(),
        )

    def top_k_membership(self, k: int) -> Dict[Hashable, float]:
        """``Pr(r(t) <= k)`` per key, memoized per ``k``."""
        self._validate_k(k)
        return dict(
            self._memoized(
                "top_k_membership",
                (k,),
                lambda: self.rank_matrix(k).membership(),
            )
        )

    def preference_matrix(
        self, keys: Optional[Sequence[Hashable]] = None
    ) -> PairwisePreferenceMatrix:
        """The memoized pairwise-preference grid over ``keys`` (default all)."""
        params = (None,) if keys is None else (tuple(keys),)
        return self._memoized(
            "preference_matrix",
            params,
            lambda: self.statistics.preference_matrix(keys),
        )

    def expected_rank_table(self) -> Dict[Hashable, float]:
        """The memoized Cormode-style expected rank of every tuple."""
        return dict(
            self._memoized(
                "expected_rank_table",
                (),
                self.statistics.expected_rank_table,
            )
        )

    def footrule_statistics(self, k: int) -> Any:
        """The memoized Υ1/Υ2/Υ3 footrule tables of Section 5.4."""

        def compute() -> Any:
            from repro.consensus.topk.footrule import FootruleStatistics

            return FootruleStatistics(self, k)

        return self._memoized("footrule_statistics", (k,), compute)

    def sampler(self) -> Any:
        """The memoized batched Monte-Carlo sampler for this database.

        Returns a :class:`repro.engine.MonteCarloSampler` whose flattened
        tree layout is computed once and reused by every warm batch; the
        sampler inherits the session's active scoring and is dropped (like
        every artifact) by :meth:`invalidate` / :meth:`set_scoring`.
        Randomness is controlled per call (``rng=`` / integer seeds) or by
        the ``REPRO_SEED`` environment variable, never memoized.
        """

        def compute() -> Any:
            from repro.engine.sampling import MonteCarloSampler

            return MonteCarloSampler(
                self._tree, score_of=self.statistics.score_of
            )

        return self._memoized("sampler", (), compute)

    def partial_rank_summary(self, max_rank: Optional[int] = None) -> Any:
        """The memoized truncated rank-polynomial summary of this database.

        Returns a :class:`repro.sharding.ShardRankSummary`: the partial
        univariate generating functions (count-above-threshold
        distributions, truncated at ``max_rank`` coefficients) that a
        sharded coordinator convolves with other shards' summaries to
        recover exact global rank probabilities without a global session.
        Only defined for tuple-independent and block-independent (BID)
        layouts -- the models whose rank generating function factorizes
        across independent shards.
        """
        if max_rank is None:
            max_rank = self.number_of_tuples()

        def compute() -> Any:
            from repro.sharding.summary import ShardRankSummary

            return ShardRankSummary(self, max_rank)

        return self._memoized("rank_partials", (max_rank,), compute)

    # ------------------------------------------------------------------
    # Consensus queries (memoized results)
    # ------------------------------------------------------------------
    def mean_topk_symmetric_difference(
        self, k: int
    ) -> Tuple[Tuple[Hashable, ...], float]:
        """Theorem 3 mean Top-k answer under ``d_Δ``."""

        def compute() -> Tuple[Tuple[Hashable, ...], float]:
            from repro.consensus.topk.symmetric_difference import (
                mean_topk_symmetric_difference,
            )

            return mean_topk_symmetric_difference(self, k)

        return self._memoized("query:mean_topk_symmetric_difference", (k,), compute)

    def median_topk_symmetric_difference(
        self, k: int
    ) -> Tuple[Tuple[Hashable, ...], float]:
        """Theorem 4 median Top-k answer under ``d_Δ``."""

        def compute() -> Tuple[Tuple[Hashable, ...], float]:
            from repro.consensus.topk.symmetric_difference import (
                median_topk_symmetric_difference,
            )

            return median_topk_symmetric_difference(self, k)

        return self._memoized(
            "query:median_topk_symmetric_difference", (k,), compute
        )

    def mean_topk_intersection(
        self, k: int
    ) -> Tuple[Tuple[Hashable, ...], float]:
        """Exact mean Top-k answer under the intersection metric."""

        def compute() -> Tuple[Tuple[Hashable, ...], float]:
            from repro.consensus.topk.intersection import mean_topk_intersection

            return mean_topk_intersection(self, k)

        return self._memoized("query:mean_topk_intersection", (k,), compute)

    def approximate_topk_intersection(
        self, k: int
    ) -> Tuple[Tuple[Hashable, ...], float]:
        """``Υ_H``-based ``H_k``-approximation under the intersection metric."""

        def compute() -> Tuple[Tuple[Hashable, ...], float]:
            from repro.consensus.topk.intersection import (
                approximate_topk_intersection,
            )

            return approximate_topk_intersection(self, k)

        return self._memoized(
            "query:approximate_topk_intersection", (k,), compute
        )

    def mean_topk_footrule(
        self, k: int
    ) -> Tuple[Tuple[Hashable, ...], float]:
        """Exact mean Top-k answer under the Spearman footrule distance."""

        def compute() -> Tuple[Tuple[Hashable, ...], float]:
            from repro.consensus.topk.footrule import mean_topk_footrule

            return mean_topk_footrule(self, k)

        return self._memoized("query:mean_topk_footrule", (k,), compute)

    def approximate_topk_kendall(
        self,
        k: int,
        candidate_pool_size: Optional[int] = None,
        rng: Any = None,
    ) -> Tuple[Hashable, ...]:
        """Pivot-based approximate mean answer under Kendall tau.

        Deterministic calls (``rng is None``) are memoized; randomised calls
        bypass the cache.
        """
        from repro.consensus.topk.kendall import approximate_topk_kendall

        if rng is not None:
            return approximate_topk_kendall(
                self, k, candidate_pool_size=candidate_pool_size, rng=rng
            )
        return self._memoized(
            "query:approximate_topk_kendall",
            (k, candidate_pool_size),
            lambda: approximate_topk_kendall(
                self, k, candidate_pool_size=candidate_pool_size
            ),
        )

    def mean_world_symmetric_difference(
        self,
    ) -> Tuple[FrozenSet[TupleAlternative], float]:
        """Theorem 2 mean consensus world under symmetric difference."""

        def compute() -> Tuple[FrozenSet[TupleAlternative], float]:
            from repro.consensus.set_consensus import (
                mean_world_symmetric_difference,
            )

            return mean_world_symmetric_difference(self._tree)

        return self._memoized(
            "query:mean_world_symmetric_difference", (), compute
        )

    def median_world_symmetric_difference(
        self,
    ) -> Tuple[FrozenSet[TupleAlternative], float]:
        """Exact median consensus world under symmetric difference."""

        def compute() -> Tuple[FrozenSet[TupleAlternative], float]:
            from repro.consensus.set_consensus import (
                median_world_symmetric_difference,
            )

            return median_world_symmetric_difference(self._tree)

        return self._memoized(
            "query:median_world_symmetric_difference", (), compute
        )

    def mean_world_jaccard(
        self,
    ) -> Tuple[FrozenSet[TupleAlternative], float]:
        """Lemma 2 mean consensus world under the Jaccard distance."""

        def compute() -> Tuple[FrozenSet[TupleAlternative], float]:
            from repro.consensus.jaccard import (
                mean_world_jaccard_tuple_independent,
            )

            return mean_world_jaccard_tuple_independent(self._tree)

        return self._memoized("query:mean_world_jaccard", (), compute)

    def median_world_jaccard(
        self,
    ) -> Tuple[FrozenSet[TupleAlternative], float]:
        """Median consensus world under the Jaccard distance (BID)."""

        def compute() -> Tuple[FrozenSet[TupleAlternative], float]:
            from repro.consensus.jaccard import median_world_jaccard_bid

            return median_world_jaccard_bid(self._tree)

        return self._memoized("query:median_world_jaccard", (), compute)

    def global_topk(self, k: int) -> Tuple[Hashable, ...]:
        """The Global-Top-k baseline answer."""

        def compute() -> Tuple[Hashable, ...]:
            from repro.baselines.ranking import global_topk

            return global_topk(self, k)

        return self._memoized("query:global_topk", (k,), compute)

    def expected_rank_topk(self, k: int) -> Tuple[Hashable, ...]:
        """The expected-rank baseline answer."""

        def compute() -> Tuple[Hashable, ...]:
            from repro.baselines.ranking import expected_rank_topk

            return expected_rank_topk(self, k)

        return self._memoized("query:expected_rank_topk", (k,), compute)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuerySession({self._tree!r}, entries={len(self._cache)}, "
            f"hits={self._hits}, misses={self._misses}, "
            f"generation={self._generation})"
        )


def as_session(source: SessionSource) -> QuerySession:
    """Coerce a tree / statistics / session into a :class:`QuerySession`.

    An existing session is returned as-is.  A :class:`RankStatistics` gets a
    session attached to it (and reused on later coercions), so repeated
    module-level calls against the same statistics object share one warm
    cache.  A bare tree gets a fresh throwaway session.
    """
    if isinstance(source, QuerySession):
        return source
    if isinstance(source, RankStatistics):
        return source.session()
    if isinstance(source, AndXorTree):
        return QuerySession(source)
    # Sharded databases coerce to their coordinator session, so every
    # module-level consensus function accepts one directly.
    coordinator = getattr(source, "coordinator", None)
    if callable(coordinator):
        session = coordinator()
        if isinstance(session, QuerySession):
            return session
    raise TypeError(
        "expected an AndXorTree, RankStatistics or QuerySession, got "
        f"{type(source).__name__}"
    )
