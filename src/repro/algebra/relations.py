"""Relations for the probabilistic SPJ algebra.

Two relation kinds are provided:

* :class:`DeterministicRelation` -- a plain bag of rows (dictionaries), each
  carrying the always-true lineage.
* :class:`ProbabilisticAlgebraRelation` -- rows annotated with lineage
  formulas over an :class:`EventSpace`.

The :class:`EventSpace` models the base uncertainty in BID style: atoms are
grouped into independent blocks, the atoms of one block are mutually
exclusive, and each atom has a marginal probability.  Tuple-independent
relations are the special case of singleton blocks.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.algebra.lineage import AtomEvent, LineageFormula, TrueEvent
from repro.exceptions import EnumerationLimitError, LineageError, ProbabilityError

Row = Mapping[Hashable, Hashable]


class EventSpace:
    """Independent blocks of mutually exclusive atomic events.

    Parameters
    ----------
    blocks:
        Mapping from block identifier to a mapping from atom identifier to
        probability.  Atom identifiers must be globally unique; each block's
        probabilities must sum to at most one.
    """

    def __init__(
        self, blocks: Mapping[Hashable, Mapping[Hashable, float]]
    ) -> None:
        self._blocks: Dict[Hashable, Dict[Hashable, float]] = {}
        self._block_of_atom: Dict[Hashable, Hashable] = {}
        for block_id, atoms in blocks.items():
            block: Dict[Hashable, float] = {}
            total = 0.0
            for atom_id, probability in atoms.items():
                probability = float(probability)
                if probability < 0.0:
                    raise ProbabilityError(
                        f"negative atom probability {probability}"
                    )
                if atom_id in self._block_of_atom:
                    raise LineageError(
                        f"atom identifier {atom_id!r} appears in two blocks"
                    )
                block[atom_id] = probability
                self._block_of_atom[atom_id] = block_id
                total += probability
            if total > 1.0 + 1e-9:
                raise ProbabilityError(
                    f"block {block_id!r} probabilities sum to {total} > 1"
                )
            self._blocks[block_id] = block

    # ------------------------------------------------------------------
    @classmethod
    def independent(
        cls, atoms: Mapping[Hashable, float]
    ) -> "EventSpace":
        """An event space of independent atoms (singleton blocks)."""
        return cls({atom_id: {atom_id: p} for atom_id, p in atoms.items()})

    def blocks(self) -> Dict[Hashable, Dict[Hashable, float]]:
        """The block specification."""
        return {block: dict(atoms) for block, atoms in self._blocks.items()}

    def block_of(self, atom_id: Hashable) -> Hashable:
        """The block containing a given atom."""
        if atom_id not in self._block_of_atom:
            raise LineageError(f"unknown atom {atom_id!r}")
        return self._block_of_atom[atom_id]

    def atom_probability(self, atom_id: Hashable) -> float:
        """Marginal probability of an atom."""
        return self._blocks[self.block_of(atom_id)][atom_id]

    # ------------------------------------------------------------------
    def outcomes_over(
        self,
        atom_ids: Iterable[Hashable],
        limit: int = 1 << 20,
    ) -> Iterator[Tuple[FrozenSet[Hashable], float]]:
        """Enumerate joint outcomes of the blocks touching the given atoms.

        Yields ``(true_atoms, probability)`` pairs where ``true_atoms`` is the
        set of atoms (restricted to the touched blocks) that are present.
        Only the blocks containing one of ``atom_ids`` are enumerated, so the
        cost is exponential in the number of *relevant* blocks only.
        """
        relevant_blocks: List[Hashable] = []
        seen = set()
        for atom_id in atom_ids:
            block_id = self.block_of(atom_id)
            if block_id not in seen:
                seen.add(block_id)
                relevant_blocks.append(block_id)
        per_block_options: List[List[Tuple[FrozenSet[Hashable], float]]] = []
        total_outcomes = 1
        for block_id in relevant_blocks:
            atoms = self._blocks[block_id]
            options: List[Tuple[FrozenSet[Hashable], float]] = []
            none_probability = 1.0 - sum(atoms.values())
            if none_probability > 1e-12:
                options.append((frozenset(), none_probability))
            for atom_id, probability in atoms.items():
                if probability > 0.0:
                    options.append((frozenset((atom_id,)), probability))
            per_block_options.append(options)
            total_outcomes *= max(len(options), 1)
            if total_outcomes > limit:
                raise EnumerationLimitError(
                    f"enumerating {total_outcomes} joint outcomes exceeds "
                    f"the limit {limit}"
                )
        for combination in product(*per_block_options):
            true_atoms: FrozenSet[Hashable] = frozenset().union(
                *(option[0] for option in combination)
            ) if combination else frozenset()
            probability = 1.0
            for _, option_probability in combination:
                probability *= option_probability
            if probability > 0.0:
                yield true_atoms, probability

    def formula_probability(
        self, formula: LineageFormula, limit: int = 1 << 20
    ) -> float:
        """Exact probability that a lineage formula is true."""
        atoms = formula.atoms()
        if not atoms:
            return 1.0 if formula.evaluate(frozenset()) else 0.0
        total = 0.0
        for true_atoms, probability in self.outcomes_over(atoms, limit=limit):
            if formula.evaluate(true_atoms):
                total += probability
        return total


class DeterministicRelation:
    """A deterministic relation: a list of rows (mappings)."""

    def __init__(
        self, rows: Iterable[Row], name: str = "relation"
    ) -> None:
        self._rows: List[Dict[Hashable, Hashable]] = [dict(row) for row in rows]
        self._name = name

    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    def rows(self) -> List[Dict[Hashable, Hashable]]:
        """The rows of the relation."""
        return [dict(row) for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def as_probabilistic(
        self, event_space: EventSpace
    ) -> "ProbabilisticAlgebraRelation":
        """Lift to a probabilistic relation with always-true lineage."""
        return ProbabilisticAlgebraRelation(
            event_space,
            [(row, TrueEvent()) for row in self._rows],
            name=self._name,
        )


class ProbabilisticAlgebraRelation:
    """A probabilistic relation for the SPJ algebra: rows with lineage."""

    def __init__(
        self,
        event_space: EventSpace,
        rows: Iterable[Tuple[Row, LineageFormula]],
        name: str = "relation",
    ) -> None:
        self._event_space = event_space
        self._rows: List[Tuple[Dict[Hashable, Hashable], LineageFormula]] = []
        for row, lineage in rows:
            if not isinstance(lineage, LineageFormula):
                raise LineageError(
                    f"row lineage must be a LineageFormula, got "
                    f"{type(lineage).__name__}"
                )
            self._rows.append((dict(row), lineage))
        self._name = name

    # ------------------------------------------------------------------
    @classmethod
    def from_bid_blocks(
        cls,
        blocks: Mapping[Hashable, Sequence[Tuple[Row, float]]],
        name: str = "relation",
    ) -> "ProbabilisticAlgebraRelation":
        """Build a BID relation: per-key mutually exclusive alternative rows.

        ``blocks`` maps a block key to a sequence of ``(row, probability)``
        alternatives.  Atoms are identified by ``(block key, row index)``.
        """
        event_blocks: Dict[Hashable, Dict[Hashable, float]] = {}
        rows: List[Tuple[Row, LineageFormula]] = []
        for block_key, alternatives in blocks.items():
            atom_probabilities: Dict[Hashable, float] = {}
            for index, (row, probability) in enumerate(alternatives):
                atom_id = (block_key, index)
                atom_probabilities[atom_id] = float(probability)
                rows.append((row, AtomEvent(atom_id)))
            event_blocks[block_key] = atom_probabilities
        return cls(EventSpace(event_blocks), rows, name=name)

    @classmethod
    def tuple_independent(
        cls,
        rows: Sequence[Tuple[Row, float]],
        name: str = "relation",
    ) -> "ProbabilisticAlgebraRelation":
        """Build a tuple-independent relation (one singleton block per row)."""
        blocks = {
            (name, index): [(row, probability)]
            for index, (row, probability) in enumerate(rows)
        }
        return cls.from_bid_blocks(blocks, name=name)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def event_space(self) -> EventSpace:
        """The underlying event space."""
        return self._event_space

    def rows(self) -> List[Tuple[Dict[Hashable, Hashable], LineageFormula]]:
        """The annotated rows ``(row, lineage)``."""
        return [(dict(row), lineage) for row, lineage in self._rows]

    def attributes(self) -> List[Hashable]:
        """The attribute names appearing in the rows (first-appearance order)."""
        seen = set()
        out: List[Hashable] = []
        for row, _ in self._rows:
            for attribute in row:
                if attribute not in seen:
                    seen.add(attribute)
                    out.append(attribute)
        return out

    def __len__(self) -> int:
        return len(self._rows)

    def with_rows(
        self,
        rows: Iterable[Tuple[Row, LineageFormula]],
        name: str | None = None,
    ) -> "ProbabilisticAlgebraRelation":
        """A new relation over the same event space with different rows."""
        return ProbabilisticAlgebraRelation(
            self._event_space, rows, name=name or self._name
        )
