#!/usr/bin/env python3
"""Consensus group-by count answers for information-extraction data.

An information-extraction pipeline produces "mention" tuples whose company
attribution is uncertain (each mention surely refers to exactly one company,
with a probability distribution over candidates).  The analyst asks

    SELECT company, COUNT(*) FROM mentions GROUP BY company

Section 6.1 of the paper defines the mean answer (expected counts) and a
median answer (a count vector achievable by some possible world) computed by
rounding the mean with a minimum-cost flow.  This example reports both,
verifies the mean's optimality numerically, and shows the 4-approximation
guarantee of Corollary 2 is loose in practice (the rounded answer is
essentially optimal).

Run it with ``python examples/extraction_groupby.py``.
"""

from __future__ import annotations

import random

from repro.consensus.aggregates import GroupByCountConsensus
from repro.core.distances import squared_euclidean_distance
from repro.workloads.scenarios import extraction_groupby_scenario

SAMPLES = 4000


def main() -> None:
    scenario = extraction_groupby_scenario(
        mention_count=30, company_count=5, rng=17
    )
    database = scenario.database
    print(f"Scenario: {scenario.description}\n")

    consensus = GroupByCountConsensus.from_bid_tree(database.tree)
    groups = consensus.groups
    mean = consensus.mean_answer()
    median, median_value = consensus.median_answer_approximation()

    print(f"{'company':12s} | {'E[count]':>9s} | {'median answer':>13s}")
    print("-" * 40)
    for group, expected, rounded in zip(groups, mean, median):
        print(f"{str(group):12s} | {expected:9.3f} | {rounded:13d}")
    print(f"{'total':12s} | {sum(mean):9.3f} | {sum(median):13d}")

    # The mean answer minimises the expected squared distance over all real
    # vectors; its value is exactly the total count variance.
    variance = consensus.count_variance()
    print(f"\nExpected squared distance of the mean answer : {variance:.4f}")
    print(f"Expected squared distance of the median answer: {median_value:.4f}")
    print(f"Ratio median / lower-bound (Corollary 2 allows up to 4): "
          f"{median_value / variance:.3f}")

    # Monte-Carlo sanity check of the expected distances.
    rng = random.Random(0)
    total_mean = 0.0
    total_median = 0.0
    for world in database.sample_worlds(SAMPLES, rng):
        counts = world.group_by_count(groups)
        total_mean += squared_euclidean_distance(mean, counts)
        total_median += squared_euclidean_distance(median, counts)
    print(
        f"\nMonte-Carlo check over {SAMPLES} sampled worlds: "
        f"mean answer {total_mean / SAMPLES:.4f}, "
        f"median answer {total_median / SAMPLES:.4f}"
    )

    # Which mentions does the median answer implicitly assign where?
    _, witness = consensus.closest_possible_answer()
    print("\nA witnessing attribution realising the median counts "
          "(first 10 mentions):")
    for index, group in list(enumerate(witness))[:10]:
        print(f"  mention{index + 1:<3d} -> {group}")


if __name__ == "__main__":
    main()
