"""The ``connect()`` facade: one connection type over every deployment.

``repro.connect(...)`` accepts anything that holds a probabilistic
database -- a convenience model, a bare and/xor tree, rank statistics, a
(sharded) query session, a :class:`~repro.models.sharded.ShardedDatabase`
or an async :class:`~repro.serving.ServingExecutor` -- and returns one
:class:`Connection` through which every declarative
:class:`~repro.query.ConsensusQuery` runs.  The connection resolves the
deployment once (``local`` / ``sharded`` / ``served``), holds the warm
session behind it, and delegates route selection to the hardness-aware
:class:`~repro.query.Planner`.

>>> import repro
>>> from repro import Query
>>> connection = repro.connect(database)          # doctest: +SKIP
>>> answer = connection.execute(Query.topk(k=10)) # doctest: +SKIP
>>> print(connection.explain(Query.topk(k=10).distance("kendall")))
...                                               # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional, Sequence, Union

from repro.exceptions import PlanningError
from repro.query.answers import QueryAnswer
from repro.query.builder import ConsensusQuery
from repro.query.plan import ExecutionPlan
from repro.query.planner import DEFAULT_PLANNER, Planner, resolve_session
from repro.query.results import ResultCache, answer_key, result_cache_for
from repro.session import CacheInfo, QuerySession


class Connection:
    """One handle over a local, sharded or served consensus database.

    Obtain instances through :func:`connect`.  All three deployments
    expose the same synchronous :meth:`execute` (served connections answer
    directly from the executor's coordinator session, sharing its warm
    caches); served connections additionally support :meth:`execute_async`,
    which routes through the executor's coalescing/batching machinery and
    must be awaited inside its event loop.
    """

    def __init__(
        self,
        session: QuerySession,
        deployment: str,
        executor: Optional[Any] = None,
        planner: Optional[Planner] = None,
        result_cache: Union[bool, ResultCache] = True,
    ) -> None:
        self._session = session
        self._deployment = deployment
        self._executor = executor
        self._planner = planner if planner is not None else DEFAULT_PLANNER
        if isinstance(result_cache, ResultCache):
            self._result_cache: Optional[ResultCache] = result_cache
        elif result_cache:
            # Attach to the answering session so every connection (and,
            # on served targets, the executor via the database holder)
            # over the same warm state shares one pool of completed
            # answers.
            self._result_cache = result_cache_for(session)
        else:
            self._result_cache = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> QuerySession:
        """The (coordinator) session answering this connection's queries."""
        return self._session

    @property
    def deployment(self) -> str:
        """``local``, ``sharded`` or ``served``."""
        return self._deployment

    @property
    def executor(self) -> Optional[Any]:
        """The serving executor behind a ``served`` connection (else None)."""
        return self._executor

    @property
    def planner(self) -> Planner:
        """The planner choosing this connection's execution paths."""
        return self._planner

    @property
    def result_cache(self) -> Optional[ResultCache]:
        """The cross-session answer cache (None when disabled)."""
        return self._result_cache

    def keys(self) -> list:
        """The tuple keys of the connected database."""
        return self._session.keys()

    def __len__(self) -> int:
        return self._session.number_of_tuples()

    def cache_info(self) -> CacheInfo:
        """The session's cache counters."""
        return self._session.cache_info()

    # ------------------------------------------------------------------
    # Planning and execution
    # ------------------------------------------------------------------
    def plan(self, query: ConsensusQuery) -> ExecutionPlan:
        """The (memoized) execution plan for a query on this connection."""
        return self._planner.plan_for(query, self._session, self._deployment)

    def explain(self, query: ConsensusQuery) -> str:
        """Render the chosen execution path without running the query."""
        return self.plan(query).explain()

    def execute(self, query: ConsensusQuery, rng: Any = None) -> QueryAnswer:
        """Execute a query synchronously, returning a :class:`QueryAnswer`.

        On a served connection whose executor is running, the query is
        handed to the executor's event loop (thread-safe) so it serializes
        with all other serving work on the coordinator worker -- the
        coordinator session is not otherwise thread-safe.  ``rng`` is only
        meaningful on that path when the randomized route would bypass
        memoization anyway, so it is rejected there; pass seeds through
        local/sharded connections or the query's own ``sampled`` settings.
        """
        if self._executor is not None:
            loop = getattr(self._executor, "_loop", None)
            if loop is not None and loop.is_running():
                import asyncio

                try:
                    running = asyncio.get_running_loop()
                except RuntimeError:
                    running = None
                if running is loop:
                    raise PlanningError(
                        "Connection.execute() would deadlock inside the "
                        "executor's event loop; await execute_async() "
                        "instead"
                    )
                if rng is not None:
                    raise PlanningError(
                        "rng overrides are not supported through a running "
                        "serving executor; use a local/sharded connection"
                    )
                return asyncio.run_coroutine_threadsafe(
                    self._executor.execute(query), loop
                ).result()
        cache_key = None
        if self._result_cache is not None and rng is None:
            # rng overrides deliberately bypass the cache: a seeded run
            # is a request for a *specific* sample stream, not for
            # whichever stream happened to be answered first.
            cache_key = self._answer_key(query)
            if cache_key is not None:
                hit = self._result_cache.get(cache_key)
                if hit is not None:
                    # A replayed answer causes no session-cache traffic
                    # of its own; the hit/miss deltas describe *this*
                    # execution, not the original compute.
                    return replace(
                        hit, cached=True, cache_hits=0, cache_misses=0
                    )
        answer = self.plan(query).execute(rng=rng)
        if cache_key is not None and not answer.stale and not answer.degraded:
            # Re-key after execution: a sharded session syncs to the
            # latest shard versions (bumping its generation) while the
            # query runs, so the ingress key may already be stale.  The
            # post-execution token is what the next lookup will compute.
            store_key = self._answer_key(query)
            if store_key is not None:
                self._result_cache.put(store_key, answer)
        return answer

    def _answer_key(self, query: ConsensusQuery) -> Optional[Any]:
        """The result-cache key of ``query`` at the session's current
        state (None when the session cannot produce a version token)."""
        token_of = getattr(self._session, "version_token", None)
        if token_of is None:
            return None
        from repro.engine import get_backend

        try:
            return answer_key(query, token_of(), get_backend().name)
        except Exception:
            return None

    def execute_many(
        self, queries: Sequence[ConsensusQuery], rng: Any = None
    ) -> List[QueryAnswer]:
        """Execute several queries, fusing shared-artifact plans.

        Queries in the batch that consult the rank-matrix artifact at
        different depths are planned as *one* sweep: the matrix is
        materialized once at the largest requested ``k`` and the smaller
        depths answered from exact column-prefix slices
        (truncation-independence of per-rank probabilities), instead of
        one full dynamic program per query.  On a served connection with
        a running executor the whole batch is submitted in one shot so
        the executor's micro-batching (and its own fusion pass) sees it
        together.  Answers come back in input order, each identical to
        what :meth:`execute` would have returned.
        """
        queries = list(queries)
        if not queries:
            return []
        if self._executor is not None:
            loop = getattr(self._executor, "_loop", None)
            if loop is not None and loop.is_running():
                import asyncio

                try:
                    running = asyncio.get_running_loop()
                except RuntimeError:
                    running = None
                if running is loop:
                    raise PlanningError(
                        "Connection.execute_many() would deadlock inside "
                        "the executor's event loop; await the executor "
                        "directly instead"
                    )
                if rng is not None:
                    raise PlanningError(
                        "rng overrides are not supported through a running "
                        "serving executor; use a local/sharded connection"
                    )
                executor = self._executor

                async def _gather() -> List[QueryAnswer]:
                    return list(
                        await asyncio.gather(
                            *(executor.execute(q) for q in queries)
                        )
                    )

                return asyncio.run_coroutine_threadsafe(
                    _gather(), loop
                ).result()
        plans = [self.plan(query) for query in queries]
        try:
            self._planner.fuse_plans(self._session, plans)
        except Exception:
            # Fusion is a pure optimization; per-query execution below
            # answers correctly without it.
            pass
        return [self.execute(query, rng=rng) for query in queries]

    async def execute_async(self, query: ConsensusQuery) -> QueryAnswer:
        """Execute through the serving executor (awaitable).

        Falls back to the synchronous path on local/sharded connections so
        async application code can treat every deployment uniformly.
        """
        if self._executor is None:
            return self.execute(query)
        return await self._executor.execute(query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Connection(deployment={self._deployment!r}, "
            f"n={self._session.number_of_tuples()})"
        )


def connect(
    target: Any,
    shards: Optional[int] = None,
    partitioner: str = "hash",
    planner: Optional[Planner] = None,
    result_cache: Union[bool, ResultCache] = True,
) -> Connection:
    """Open a :class:`Connection` over any supported target.

    Parameters
    ----------
    target:
        A convenience database (``TupleIndependentDatabase`` /
        ``BlockIndependentDatabase`` / ``XTupleDatabase``), an
        :class:`~repro.andxor.tree.AndXorTree`, a ``RankStatistics``, a
        :class:`~repro.session.QuerySession`, a
        :class:`~repro.models.sharded.ShardedDatabase`, a sharded
        coordinator session, a :class:`~repro.serving.ServingExecutor`, or
        an existing :class:`Connection` (returned unchanged).
    shards:
        When given (and the target is an unsharded database), partition it
        into this many shards first and connect to the coordinator.
        Incompatible with targets that are already connected or sharded --
        re-shard the underlying database instead.
    partitioner:
        Partitioning strategy for ``shards`` (``"hash"`` or ``"range"``).
    planner:
        Optional :class:`Planner` override (defaults to the process-wide
        hardness-aware planner).
    result_cache:
        ``True`` (default) attaches the shared cross-session
        :class:`~repro.query.ResultCache` of the answering session;
        ``False`` disables answer caching for this connection; an
        explicit :class:`~repro.query.ResultCache` instance is used
        as-is (e.g. to bound capacity or set a TTL).
    """
    if isinstance(target, Connection):
        if shards is not None:
            raise PlanningError(
                "cannot re-shard through a Connection; call "
                "connect(database, shards=...) on the underlying database"
            )
        if planner is not None and planner is not target.planner:
            # Rebind to the requested planner, sharing the warm session.
            return Connection(
                target.session,
                target.deployment,
                executor=target.executor,
                planner=planner,
            )
        return target
    if shards is not None:
        if shards < 1:
            raise PlanningError(
                f"shard count must be positive, got {shards}"
            )
        from repro.models.sharded import ShardedDatabase

        if isinstance(target, ShardedDatabase):
            raise PlanningError(
                "target is already sharded; connect to it directly or "
                "re-shard the underlying database"
            )
        target = ShardedDatabase(target, shards, partitioner=partitioner)
    session, deployment = resolve_session(target)
    executor = None
    if deployment == "served":
        executor = target
    return Connection(
        session,
        deployment,
        executor=executor,
        planner=planner,
        result_cache=result_cache,
    )
