"""Shared plumbing for the Top-k consensus algorithms."""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple, Union

from repro.andxor.rank_probabilities import RankStatistics
from repro.andxor.tree import AndXorTree
from repro.engine import RankMatrix
from repro.exceptions import ConsensusError

TreeOrStatistics = Union[AndXorTree, RankStatistics]
TopKAnswer = Tuple[Hashable, ...]


def as_rank_statistics(source: TreeOrStatistics) -> RankStatistics:
    """Coerce a tree or an existing statistics cache into rank statistics.

    Passing an existing :class:`~repro.andxor.rank_probabilities.RankStatistics`
    avoids recomputing rank distributions when several consensus answers are
    requested for the same database.
    """
    if isinstance(source, RankStatistics):
        return source
    if isinstance(source, AndXorTree):
        return RankStatistics(source)
    raise ConsensusError(
        "expected an AndXorTree or RankStatistics, got "
        f"{type(source).__name__}"
    )


def validate_k(statistics: RankStatistics, k: int) -> int:
    """Validate the requested answer size against the database size."""
    if k <= 0:
        raise ConsensusError(f"k must be positive, got {k}")
    n = statistics.number_of_tuples()
    if k > n:
        raise ConsensusError(
            f"k = {k} exceeds the number of tuples in the database ({n})"
        )
    return k


def rank_matrix_view(
    statistics: RankStatistics, k: int, cumulative: bool = False
) -> RankMatrix:
    """The validated ``n_tuples × k`` rank matrix of a database.

    The shared entry point the Top-k consensus algorithms use instead of
    assembling per-key ``List[float]`` dictionaries one lookup at a time;
    ``cumulative=True`` returns the ``Pr(r(t) <= i)`` view.
    """
    validate_k(statistics, k)
    matrix = statistics.rank_matrix(k)
    return matrix.cumulative() if cumulative else matrix


def order_by_score(
    statistics: RankStatistics, keys: Sequence[Hashable]
) -> TopKAnswer:
    """Order keys by the maximum score of their alternatives (descending).

    This is the natural presentation order for order-insensitive answers such
    as the symmetric-difference consensus.
    """
    best_score = {
        key: max(
            statistics.score_of(alternative)
            for alternative in statistics.tree.alternatives_of(key)
        )
        for key in keys
    }
    return tuple(
        sorted(keys, key=lambda key: (-best_score[key], repr(key)))
    )
