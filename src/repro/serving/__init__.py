"""Async sharded serving layer.

The paper frames consensus answers as a query-time service over a
probabilistic database; this package is the serving assembly of the
reproduction's per-shard pieces:

* :class:`~repro.serving.requests.QueryRequest` -- the string-keyed wire
  form; every request converts to one declarative
  :class:`~repro.query.ConsensusQuery`, the single execution type.
* :class:`~repro.serving.executor.ServingExecutor` -- the asyncio
  front-end: request coalescing (keyed by the query objects' stable
  hash), micro-batching, a per-shard worker pool for summary refresh /
  shard rebuilds, and graceful cache-invalidation fan-out on updates.
  Execution routes through the hardness-aware planner
  (:mod:`repro.query.planner`) and self-heals: per-query deadlines,
  bounded retries, per-shard circuit breakers, and stale / shard-excluded
  degraded answers while a shard worker is down.
* :mod:`repro.serving.metrics` -- latency and throughput instrumentation.

Traffic to drive it comes from :mod:`repro.workloads.traffic`.
"""

from repro.serving.executor import ServingExecutor
from repro.serving.metrics import (
    LatencyRecorder,
    ServingMetrics,
    ServingMetricsSnapshot,
)
from repro.serving.requests import (
    QUERY_KINDS,
    QueryRequest,
    execute_request,
)

__all__ = [
    "LatencyRecorder",
    "QUERY_KINDS",
    "QueryRequest",
    "ServingExecutor",
    "ServingMetrics",
    "ServingMetricsSnapshot",
    "execute_request",
]


def __getattr__(name: str):
    # QUERY_DISPATCH moved behind a deprecation shim in .requests.
    if name == "QUERY_DISPATCH":
        from repro.serving import requests

        return requests.QUERY_DISPATCH
    raise AttributeError(name)
