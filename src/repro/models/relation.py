"""The :class:`ProbabilisticRelation` facade.

Consensus algorithms in :mod:`repro.consensus` operate directly on
:class:`~repro.andxor.tree.AndXorTree` objects; this facade bundles a tree
with the handful of operations applications typically need (presence
probabilities, world enumeration and sampling, rank statistics) so that the
examples and benchmarks read naturally.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Sequence

from repro.andxor.enumeration import enumerate_worlds
from repro.andxor.rank_probabilities import RankStatistics
from repro.andxor.sampling import sample_world, sample_worlds
from repro.andxor.statistics import presence_vector, size_distribution
from repro.andxor.tree import AndXorTree
from repro.core.tuples import TupleAlternative
from repro.core.worlds import PossibleWorld, WorldDistribution


class ProbabilisticRelation:
    """A probabilistic relation ``R^P(K; A)`` backed by an and/xor tree.

    Parameters
    ----------
    tree:
        The and/xor tree describing the correlations of the relation.
    name:
        Optional human-readable name used in reports.
    """

    def __init__(self, tree: AndXorTree, name: str = "relation") -> None:
        self._tree = tree
        self._name = name
        self._rank_statistics: RankStatistics | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def tree(self) -> AndXorTree:
        """The underlying and/xor tree."""
        return self._tree

    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    def keys(self) -> List[Hashable]:
        """The distinct possible-worlds keys of the relation."""
        return self._tree.keys()

    def alternatives(self) -> List[TupleAlternative]:
        """The distinct tuple alternatives of the relation."""
        return self._tree.alternatives()

    def __len__(self) -> int:
        return len(self._tree.keys())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProbabilisticRelation({self._name!r}, {len(self)} tuples, "
            f"{len(self._tree.leaves)} alternatives)"
        )

    # ------------------------------------------------------------------
    # Probabilities
    # ------------------------------------------------------------------
    def presence_probability(self, key: Hashable) -> float:
        """Probability that the tuple with the given key is present."""
        return self._tree.key_probability(key)

    def presence_probabilities(self) -> Dict[Hashable, float]:
        """Presence probability of every tuple key."""
        return presence_vector(self._tree)

    def size_distribution(self) -> List[float]:
        """Distribution of the number of tuples in the random world."""
        return size_distribution(self._tree)

    def expected_size(self) -> float:
        """Expected number of tuples in the random world."""
        return self._tree.expected_world_size()

    def rank_statistics(self) -> RankStatistics:
        """Cached :class:`~repro.andxor.rank_probabilities.RankStatistics`."""
        if self._rank_statistics is None:
            self._rank_statistics = RankStatistics(self._tree)
        return self._rank_statistics

    # ------------------------------------------------------------------
    # Worlds
    # ------------------------------------------------------------------
    def possible_worlds(self, limit: int = 1 << 18) -> WorldDistribution:
        """Enumerate the full possible-world distribution (small relations)."""
        return enumerate_worlds(self._tree, limit=limit)

    def sample_world(self, rng: random.Random | None = None) -> PossibleWorld:
        """Draw one possible world."""
        return sample_world(self._tree, rng)

    def sample_worlds(
        self, count: int, rng: random.Random | None = None
    ) -> List[PossibleWorld]:
        """Draw ``count`` independent possible worlds."""
        return sample_worlds(self._tree, count, rng)
