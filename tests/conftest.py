"""Shared fixtures and random-instance helpers for the test suite.

Most tests validate the polynomial-time algorithms against brute-force
oracles on small random instances; the helpers here generate those instances
deterministically from seeds so failures are reproducible.
"""

from __future__ import annotations

import os
import random
import sys

import pytest

# Allow running the tests without installing the package (e.g. straight from
# a source checkout): put src/ on the path if the package is not importable.
_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.models.bid import BlockIndependentDatabase  # noqa: E402
from repro.models.tuple_independent import TupleIndependentDatabase  # noqa: E402
from repro.models.xtuples import XTupleDatabase  # noqa: E402


def small_tuple_independent(seed: int, count: int = 5) -> TupleIndependentDatabase:
    """A small random tuple-independent database with distinct scores."""
    rng = random.Random(seed)
    scores = rng.sample(range(10, 1000), count)
    tuples = [
        (f"t{i + 1}", scores[i], float(scores[i]), round(rng.uniform(0.05, 0.95), 3))
        for i in range(count)
    ]
    return TupleIndependentDatabase(tuples)


def small_bid(
    seed: int,
    blocks: int = 4,
    max_alternatives: int = 3,
    exhaustive: bool = False,
) -> BlockIndependentDatabase:
    """A small random BID database with distinct scores."""
    rng = random.Random(seed)
    total = blocks * max_alternatives
    scores = iter(rng.sample(range(10, 5000), total))
    spec = []
    for b in range(blocks):
        count = rng.randint(1, max_alternatives)
        raw = [rng.uniform(0.1, 1.0) for _ in range(count)]
        if exhaustive:
            norm = sum(raw)
        else:
            norm = sum(raw) / rng.uniform(0.4, 0.9)
        alternatives = []
        for j in range(count):
            score = float(next(scores))
            alternatives.append((score, score, raw[j] / norm))
        spec.append((f"t{b + 1}", alternatives))
    return BlockIndependentDatabase(spec)


def small_xtuple(
    seed: int, groups: int = 3, max_members: int = 2, exhaustive: bool = False
) -> XTupleDatabase:
    """A small random x-tuple database with distinct scores."""
    rng = random.Random(seed)
    total = groups * max_members
    scores = iter(rng.sample(range(10, 5000), total))
    spec = []
    key = 0
    for _ in range(groups):
        count = rng.randint(1, max_members)
        raw = [rng.uniform(0.1, 1.0) for _ in range(count)]
        if exhaustive:
            norm = sum(raw)
        else:
            norm = sum(raw) / rng.uniform(0.4, 0.9)
        members = []
        for j in range(count):
            key += 1
            score = float(next(scores))
            members.append((f"t{key}", score, score, raw[j] / norm))
        spec.append(members)
    return XTupleDatabase(spec)


@pytest.fixture
def rng() -> random.Random:
    """A seeded random generator for tests that need one."""
    return random.Random(12345)
