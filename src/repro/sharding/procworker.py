"""Shard worker process entrypoint.

One worker process owns one database shard: it rebuilds the shard's
database and warm :class:`~repro.session.QuerySession` from the (picklable)
partition units, answers layout / summary / cache-info requests over its
pipe, and participates in the coordinator's version-checked update protocol
through staged ``prepare`` / ``commit`` / ``abort`` commands (the expensive
tree rebuild happens here, off the parent's query path; the parent's
:class:`~repro.models.sharded.ShardedDatabase` keeps sole authority over
shard versions and the distinct-score registry).

Everything in this module is importable at top level so the ``spawn`` start
method can pickle the :func:`worker_main` target; the parent side lives in
:mod:`repro.sharding.procpool`.

Wire protocol: the parent sends ``(op, payload)`` tuples and receives
``("ok", value)`` or ``("error", (exception_type_name, message))``.  Large
tuple-independent prefix tables are exported through
``multiprocessing.shared_memory`` when the parent asks for it (numpy
backend only); everything else travels pickled over the pipe.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import get_backend, set_backend
from repro.exceptions import ProcessPoolError
from repro.session import QuerySession
from repro.sharding.summary import shard_layout, table_delta_start

#: Transport tags for the prefix-table payload of a summary reply.
PIPE_TRANSPORT = "pipe"
SHM_TRANSPORT = "shm"
#: Wrapper tag for a row-suffix delta against a previously shipped table.
DELTA_TRANSPORT = "delta"


def _untrack_shared_memory(shm: Any) -> None:
    """Hand a segment's unlink responsibility to the parent process.

    The creating process's ``resource_tracker`` would otherwise unlink the
    segment (with a "leaked shared_memory" warning) when this worker exits,
    racing the parent that is still reading it.
    """
    try:  # private API, but the standard workaround pre-3.13
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variants
        pass


def export_table(
    table: Any, shm_wanted: bool, shm_min_bytes: int
) -> Tuple[Any, ...]:
    """Package a dense row table for the parent.

    Returns a ``("shm", name, shape)`` descriptor when the table is a
    large-enough numpy array and the parent asked for shared memory, or
    ``("pipe", table)`` otherwise.
    """
    if shm_wanted and get_backend().name == "numpy":
        import numpy as np
        from multiprocessing import shared_memory

        array = np.ascontiguousarray(table, dtype=np.float64)
        if array.nbytes >= max(shm_min_bytes, 1):
            segment = shared_memory.SharedMemory(
                create=True, size=array.nbytes
            )
            view = np.ndarray(
                array.shape, dtype=np.float64, buffer=segment.buf
            )
            view[:] = array
            name = segment.name
            _untrack_shared_memory(segment)
            segment.close()
            return (SHM_TRANSPORT, name, array.shape)
    return (PIPE_TRANSPORT, table)


def export_prefix_table(
    summary: Any, shm_wanted: bool, shm_min_bytes: int
) -> Optional[Tuple[Any, ...]]:
    """Package a summary's dense prefix table for the parent.

    Returns ``None`` for block-independent shards (their partials are
    derived from the layout on the parent), otherwise whatever
    :func:`export_table` picked for the full table.
    """
    if not summary.is_independent:
        return None
    return export_table(summary.prefix_table, shm_wanted, shm_min_bytes)


class ShardWorkerState:
    """The worker-side shard: units, database, session, staged rebuilds."""

    def __init__(self, shard_index: int, name: str, units: List[Any]) -> None:
        self.shard_index = shard_index
        self.name = name
        self.units = units
        self._database: Optional[Any] = None
        self._session: Optional[QuerySession] = None
        #: ticket -> (units, database): rebuilds prepared but not committed.
        self.staged: Dict[int, Tuple[List[Any], Any]] = {}
        #: Monotone id of the worker's committed state.  Bumped atomically
        #: with the staged swap, so it identifies summary *content* even
        #: while the parent's version bump is still in flight.
        self.state_id = 0
        #: max_rank -> (export_id, scores, probabilities) of the last full
        #: table shipped, the baseline for row-suffix delta exports.
        self._exports: Dict[int, Tuple[int, List[Any], List[float]]] = {}
        self._next_export = 0

    def _build_database(self, units: List[Any]) -> Any:
        from repro.models.sharded import build_shard_database

        return build_shard_database(self.name, self.shard_index, units)

    def session(self) -> Optional[QuerySession]:
        if not self.units:
            return None
        if self._session is None:
            if self._database is None:
                self._database = self._build_database(self.units)
            self._session = QuerySession(self._database.tree)
        return self._session

    # -- command handlers ----------------------------------------------
    def handle_layout(self, _payload: Any) -> Any:
        session = self.session()
        if session is None:
            raise ProcessPoolError(
                f"shard {self.shard_index} is empty; it has no layout"
            )
        return shard_layout(session)

    def handle_summary(
        self, payload: Tuple[int, bool, int, Optional[int]]
    ) -> Any:
        max_rank, shm_wanted, shm_min_bytes, base_export = payload
        session = self.session()
        if session is None:
            raise ProcessPoolError(
                f"shard {self.shard_index} is empty; it has no summary"
            )
        summary = session.partial_rank_summary(max_rank)
        layout = summary.layout
        table = None
        export_id: Optional[int] = None
        if summary.is_independent:
            export_id = self._next_export
            self._next_export += 1
            retained = self._exports.get(max_rank)
            start: Optional[int] = None
            if (
                retained is not None
                and base_export == retained[0]
                and retained[1] == layout.scores
            ):
                start = table_delta_start(retained[2], layout.probabilities)
            if start is not None:
                # Row m of the prefix table depends only on the first m
                # probabilities, so a tail swap reaches the parent as a
                # row suffix spliced onto the table it already holds.
                rows = len(layout.probabilities) + 1
                if start >= rows:
                    inner = None
                else:
                    suffix = get_backend().take_rows(
                        summary.prefix_table, range(start, rows)
                    )
                    inner = export_table(suffix, shm_wanted, shm_min_bytes)
                table = (DELTA_TRANSPORT, retained[0], start, inner)
            else:
                table = export_prefix_table(
                    summary, shm_wanted, shm_min_bytes
                )
            self._exports[max_rank] = (
                export_id,
                list(layout.scores),
                list(layout.probabilities),
            )
        else:
            self._exports.pop(max_rank, None)
        return {
            "layout": layout,
            "max_rank": summary.max_rank,
            "table": table,
            "state_id": self.state_id,
            "export_id": export_id,
        }

    def handle_prepare(self, payload: Tuple[int, List[Any]]) -> int:
        ticket, units = payload
        # The expensive half of the swap: tree construction runs here, on
        # the owning worker, while other shards keep answering queries.
        self.staged[ticket] = (units, self._build_database(units))
        return ticket

    def handle_commit(self, ticket: int) -> int:
        try:
            units, database = self.staged.pop(ticket)
        except KeyError:
            raise ProcessPoolError(
                f"unknown staged rebuild ticket {ticket} on shard "
                f"{self.shard_index} (already committed or aborted?)"
            ) from None
        self.units = units
        self._database = database
        self._session = None
        # New committed content: advance the state id the parent pairs
        # with shard versions so merge caches never mix states.
        self.state_id += 1
        return ticket

    def handle_abort(self, ticket: int) -> int:
        self.staged.pop(ticket, None)
        return ticket

    def handle_invalidate(self, _payload: Any) -> None:
        if self._session is not None:
            self._session.invalidate()
        return None

    def handle_cache_info(self, _payload: Any) -> Any:
        if self._session is None:
            from repro.session import CacheInfo

            return CacheInfo(backend=get_backend().name)
        return self._session.cache_info()

    def handle_stats(self, _payload: Any) -> Dict[str, Any]:
        return {
            "pid": os.getpid(),
            "shard_index": self.shard_index,
            "tuples": len(self.units),
            "staged": len(self.staged),
            "session_built": self._session is not None,
            "backend": get_backend().name,
            "state_id": self.state_id,
        }


def worker_main(
    connection: Any,
    shard_index: int,
    name: str,
    backend_name: str,
    units: List[Any],
) -> None:
    """Run one shard worker until shutdown or parent disconnect."""
    set_backend(backend_name)
    state = ShardWorkerState(shard_index, name, units)
    handlers = {
        "layout": state.handle_layout,
        "summary": state.handle_summary,
        "prepare": state.handle_prepare,
        "commit": state.handle_commit,
        "abort": state.handle_abort,
        "invalidate": state.handle_invalidate,
        "cache_info": state.handle_cache_info,
        "stats": state.handle_stats,
        "ping": lambda _payload: "pong",
        # Fault-injection hook: a slow shard.  The worker sleeps before
        # replying, so the stall delays exactly one parent request; the
        # cap keeps a corrupt schedule from wedging the worker forever.
        "stall": lambda seconds: time.sleep(min(float(seconds), 60.0)),
    }
    while True:
        try:
            op, payload = connection.recv()
        except (EOFError, OSError):  # parent went away: nothing to serve
            break
        if op == "shutdown":
            try:
                connection.send(("ok", None))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
            break
        if op == "exit-now":
            # Test hook: simulate a crash (no reply, hard exit) so the
            # parent's no-hang detection can be exercised deterministically.
            os._exit(13)
        handler = handlers.get(op)
        try:
            if handler is None:
                raise ProcessPoolError(f"unknown worker command {op!r}")
            reply = ("ok", handler(payload))
        except BaseException as error:  # ship the failure, keep serving
            reply = ("error", (type(error).__name__, str(error)))
        try:
            connection.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover
            break
    try:
        connection.close()
    except OSError:  # pragma: no cover
        pass
