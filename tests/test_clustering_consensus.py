"""Tests for consensus clustering (Section 6.2)."""

from __future__ import annotations

import math
import random

import pytest

from repro.andxor.enumeration import enumerate_worlds
from repro.consensus.clustering import (
    co_clustering_probabilities,
    consensus_clustering,
    expected_clustering_distance,
    pivot_clustering,
)
from repro.core.clustering_distance import clustering_disagreement_distance
from repro.core.consensus_bruteforce import brute_force_mean_clustering
from repro.exceptions import ConsensusError
from repro.models.bid import BlockIndependentDatabase
from tests.conftest import small_bid


def clustering_workload(seed, tuples=5, values=3, exhaustive=True):
    """A BID database whose value attribute drives the clustering."""
    rng = random.Random(seed)
    labels = [f"v{i}" for i in range(values)]
    blocks = {}
    for index in range(tuples):
        supported = rng.sample(labels, rng.randint(1, values))
        raw = [rng.random() + 0.1 for _ in supported]
        norm = sum(raw) if exhaustive else sum(raw) / rng.uniform(0.5, 0.9)
        blocks[f"t{index + 1}"] = [
            (label, weight / norm) for label, weight in zip(supported, raw)
        ]
    return BlockIndependentDatabase(blocks)


class TestCoClusteringProbabilities:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_enumeration(self, seed):
        database = clustering_workload(seed, tuples=4, exhaustive=False)
        tree = database.tree
        distribution = enumerate_worlds(tree)
        universe = tree.keys()
        weights = co_clustering_probabilities(tree, include_absent_cluster=True)
        for pair, weight in weights.items():
            first, second = sorted(pair, key=repr)
            expected = distribution.probability_that(
                lambda w: frozenset((first, second)) in {
                    frozenset(p)
                    for cluster in w.clustering(universe)
                    for p in _pairs(cluster)
                }
            )
            assert math.isclose(weight, expected, abs_tol=1e-9)

    def test_without_absent_cluster(self):
        database = clustering_workload(4, tuples=3, exhaustive=False)
        with_absent = co_clustering_probabilities(database.tree, True)
        without = co_clustering_probabilities(database.tree, False)
        for pair in without:
            assert without[pair] <= with_absent[pair] + 1e-12


def _pairs(cluster):
    items = sorted(cluster, key=repr)
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            yield (items[i], items[j])


class TestExpectedClusteringDistance:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_enumeration(self, seed):
        database = clustering_workload(seed, tuples=4)
        tree = database.tree
        universe = tree.keys()
        distribution = enumerate_worlds(tree)
        weights = co_clustering_probabilities(tree)
        candidates = [
            frozenset(frozenset((key,)) for key in universe),
            frozenset((frozenset(universe),)),
        ]
        for candidate in candidates:
            closed_form = expected_clustering_distance(candidate, weights, universe)
            oracle = distribution.expectation(
                lambda w: clustering_disagreement_distance(
                    candidate, w.clustering(universe)
                )
            )
            assert math.isclose(closed_form, oracle, abs_tol=1e-9)


class TestConsensusClustering:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_close_to_bruteforce_optimum(self, seed):
        """The pivot-based consensus stays within the constant-factor regime
        (we check a factor of 2 on these small instances; the ACN guarantee
        for the full algorithm is 4/3)."""
        database = clustering_workload(seed, tuples=5)
        tree = database.tree
        distribution = enumerate_worlds(tree)
        universe = tree.keys()
        answer, value = consensus_clustering(tree, rng=random.Random(seed))
        _, optimal_value = brute_force_mean_clustering(distribution, universe)
        if optimal_value < 1e-12:
            assert value < 1e-9
        else:
            assert value <= 2.0 * optimal_value + 1e-9

    def test_deterministic_pivot_variant(self):
        database = clustering_workload(7, tuples=5)
        answer, value = consensus_clustering(database.tree, rng=None)
        covered = {key for cluster in answer for key in cluster}
        assert covered == set(database.tree.keys())

    def test_strongly_clustered_instance(self):
        """Two groups of tuples that almost surely share a value each."""
        database = BlockIndependentDatabase(
            {
                "a1": [("red", 0.95), ("blue", 0.05)],
                "a2": [("red", 0.95), ("blue", 0.05)],
                "b1": [("green", 0.95), ("yellow", 0.05)],
                "b2": [("green", 0.95), ("yellow", 0.05)],
            }
        )
        answer, _ = consensus_clustering(database.tree)
        assert frozenset(("a1", "a2")) in answer
        assert frozenset(("b1", "b2")) in answer

    def test_empty_tree_rejected(self):
        from repro.andxor.nodes import AndNode
        from repro.andxor.tree import AndXorTree

        with pytest.raises(ConsensusError):
            consensus_clustering(AndXorTree(AndNode(())))

    def test_pivot_clustering_partition(self):
        database = clustering_workload(9, tuples=6)
        weights = co_clustering_probabilities(database.tree)
        clustering = pivot_clustering(database.tree.keys(), weights)
        flattened = [key for cluster in clustering for key in cluster]
        assert sorted(flattened) == sorted(database.tree.keys())
