"""Exact possible-world enumeration for and/xor trees.

Enumeration is exponential in general and only used on small instances: the
polynomial consensus algorithms never call it, but the test-suite and the
benchmark harness use it to produce ground-truth world distributions that
every theorem of the paper is checked against.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.andxor.nodes import AndNode, Leaf, Node, XorNode
from repro.andxor.tree import AndXorTree
from repro.core.tuples import TupleAlternative
from repro.core.worlds import WorldDistribution
from repro.exceptions import EnumerationLimitError, ModelError

_WorldMap = Dict[FrozenSet[TupleAlternative], float]


def _merge_scaled(target: _WorldMap, source: _WorldMap, scale: float) -> None:
    for world, probability in source.items():
        if probability * scale <= 0.0:
            continue
        target[world] = target.get(world, 0.0) + probability * scale


def _enumerate_node(node: Node, limit: int) -> _WorldMap:
    if isinstance(node, Leaf):
        return {frozenset((node.alternative,)): 1.0}
    if isinstance(node, XorNode):
        worlds: _WorldMap = {}
        none_probability = node.none_probability
        if none_probability > 0.0:
            worlds[frozenset()] = none_probability
        for child, probability in node.edges():
            if probability <= 0.0:
                continue
            child_worlds = _enumerate_node(child, limit)
            _merge_scaled(worlds, child_worlds, probability)
            if len(worlds) > limit:
                raise EnumerationLimitError(
                    f"more than {limit} distinct possible worlds"
                )
        return worlds
    if isinstance(node, AndNode):
        worlds = {frozenset(): 1.0}
        for child in node.children():
            child_worlds = _enumerate_node(child, limit)
            combined: _WorldMap = {}
            for world, probability in worlds.items():
                for child_world, child_probability in child_worlds.items():
                    key = world | child_world
                    combined[key] = (
                        combined.get(key, 0.0) + probability * child_probability
                    )
            worlds = combined
            if len(worlds) > limit:
                raise EnumerationLimitError(
                    f"more than {limit} distinct possible worlds"
                )
        return worlds
    raise ModelError(f"unsupported node type {type(node).__name__}")


def enumerate_worlds(
    tree: AndXorTree, limit: int = 1 << 18
) -> WorldDistribution:
    """Enumerate the full possible-world distribution of a tree.

    Parameters
    ----------
    tree:
        The and/xor tree to enumerate.
    limit:
        Maximum number of distinct possible worlds to materialise; a
        :class:`~repro.exceptions.EnumerationLimitError` is raised when
        exceeded.
    """
    worlds = _enumerate_node(tree.root, limit)
    return WorldDistribution(
        ((alternatives, probability) for alternatives, probability in worlds.items()),
        require_normalized=True,
    )


def count_worlds_upper_bound(tree: AndXorTree) -> int:
    """A cheap upper bound on the number of distinct possible worlds."""

    def bound(node: Node) -> int:
        if isinstance(node, Leaf):
            return 1
        if isinstance(node, XorNode):
            return 1 + sum(bound(child) for child in node.children())
        product = 1
        for child in node.children():
            product *= bound(child)
            if product > 1 << 62:
                return 1 << 62
        return product

    return bound(tree.root)
