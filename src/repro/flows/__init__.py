"""Minimum-cost flow substrate.

The group-by count median answer (Theorem 5 of the paper) is computed by a
minimum-cost network-flow rounding of the mean answer.  This package provides
a from-scratch successive-shortest-path min-cost-flow solver and helpers to
build the tuple/group networks used in Section 6.1.
"""

from repro.flows.network import FlowNetwork
from repro.flows.mincost import min_cost_flow

__all__ = ["FlowNetwork", "min_cost_flow"]
