"""Kemeny rank aggregation (exact, brute force) and pairwise tools.

The Kemeny optimal aggregation of rankings ``τ_1..τ_k`` minimises
``Σ_i d_K(τ, τ_i)`` where ``d_K`` is the Kendall tau distance (number of
discordant pairs).  Computing it is NP-hard already for four rankings, so the
exact solver here enumerates permutations and is only used as a ground-truth
oracle on small instances; the polynomial approximations live in
:mod:`repro.rankagg.footrule` and :mod:`repro.rankagg.pivot`.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.exceptions import ConsensusError, EnumerationLimitError

Ranking = Sequence[Hashable]
WeightedRankings = Sequence[Tuple[Ranking, float]]


def _positions(ranking: Ranking) -> Dict[Hashable, int]:
    return {item: index for index, item in enumerate(ranking)}


def kendall_tau_between_rankings(first: Ranking, second: Ranking) -> float:
    """Kendall tau distance (number of discordant pairs) of two full rankings.

    Both rankings must order the same set of items.
    """
    if set(first) != set(second):
        raise ConsensusError(
            "Kendall tau between full rankings requires the same item sets"
        )
    positions = _positions(second)
    items = list(first)
    distance = 0.0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            if positions[items[i]] > positions[items[j]]:
                distance += 1.0
    return distance


def pairwise_majority_matrix(
    rankings: WeightedRankings,
) -> Dict[Tuple[Hashable, Hashable], float]:
    """Fraction of (weighted) rankings placing ``i`` before ``j``.

    Returns a dictionary over ordered pairs of distinct items.  The weights
    are normalised to sum to one.
    """
    total_weight = sum(weight for _, weight in rankings)
    if total_weight <= 0:
        raise ConsensusError("rankings must have positive total weight")
    items: List[Hashable] = []
    seen = set()
    for ranking, _ in rankings:
        for item in ranking:
            if item not in seen:
                seen.add(item)
                items.append(item)
    matrix: Dict[Tuple[Hashable, Hashable], float] = {
        (a, b): 0.0 for a in items for b in items if a != b
    }
    for ranking, weight in rankings:
        positions = _positions(ranking)
        for a in items:
            for b in items:
                if a == b:
                    continue
                position_a = positions.get(a)
                position_b = positions.get(b)
                if position_a is None or position_b is None:
                    continue
                if position_a < position_b:
                    matrix[(a, b)] += weight / total_weight
    return matrix


def weighted_kendall_cost(
    candidate: Ranking,
    preference: Dict[Tuple[Hashable, Hashable], float],
) -> float:
    """Expected Kendall disagreement of ``candidate`` with a preference matrix.

    ``preference[(i, j)]`` is the (probability) weight of "i before j"; a
    candidate placing ``i`` before ``j`` pays ``preference[(j, i)]`` for that
    pair.
    """
    cost = 0.0
    items = list(candidate)
    for index, first in enumerate(items):
        for second in items[index + 1:]:
            cost += preference.get((second, first), 0.0)
    return cost


def exact_kemeny_aggregation(
    rankings: WeightedRankings,
    limit: int = 500_000,
) -> Tuple[Tuple[Hashable, ...], float]:
    """Brute-force Kemeny optimal aggregation.

    Returns the optimal ranking and its total weighted Kendall distance.
    Raises :class:`~repro.exceptions.EnumerationLimitError` when the number
    of permutations exceeds ``limit``.
    """
    preference = pairwise_majority_matrix(rankings)
    items = sorted({item for ranking, _ in rankings for item in ranking}, key=repr)
    return exact_kemeny_from_preferences(items, preference, limit=limit)


def exact_kemeny_from_preferences(
    items: Sequence[Hashable],
    preference: Dict[Tuple[Hashable, Hashable], float],
    limit: int = 500_000,
) -> Tuple[Tuple[Hashable, ...], float]:
    """Brute-force Kemeny aggregation given a pairwise preference matrix."""
    items = list(items)
    count = 1
    for i in range(2, len(items) + 1):
        count *= i
    if count > limit:
        raise EnumerationLimitError(
            f"enumerating {count} permutations exceeds the limit {limit}"
        )
    best: Tuple[Tuple[Hashable, ...], float] | None = None
    for candidate in permutations(items):
        cost = weighted_kendall_cost(candidate, preference)
        if best is None or cost < best[1] - 1e-15:
            best = (candidate, cost)
    if best is None:
        raise ConsensusError("no items to aggregate")
    return best
