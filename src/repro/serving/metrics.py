"""Latency / throughput instrumentation for the serving executor."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Any, Deque, Dict, Optional, Tuple


class LatencyRecorder:
    """Collects request latencies (seconds) and reports simple quantiles.

    Memory is bounded: quantiles are computed over a sliding window of the
    most recent ``window`` observations (a serving process records one
    latency per request, indefinitely), while :attr:`count` and
    :meth:`mean` stay exact over the whole lifetime.
    """

    __slots__ = ("_window", "_count", "_total")

    def __init__(self, window: int = 4096) -> None:
        self._window: Deque[float] = deque(maxlen=max(1, window))
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        self._window.append(seconds)
        self._count += 1
        self._total += seconds

    @property
    def count(self) -> int:
        """Lifetime number of recorded latencies."""
        return self._count

    def mean(self) -> float:
        """Lifetime mean latency."""
        if not self._count:
            return 0.0
        return self._total / self._count

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the recent window; ``fraction`` in
        [0, 1]."""
        if not self._window:
            return 0.0
        ordered = sorted(self._window)
        rank = min(
            len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
        )
        return ordered[rank]


@dataclass(frozen=True)
class ServingMetricsSnapshot:
    """Immutable view of the executor's counters at one instant."""

    queries: int
    coalesced: int
    batches: int
    updates: int
    invalidations: int
    mean_batch_size: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    queries_by_kind: Tuple[Tuple[str, int], ...]
    #: Reads answered on a version-pinned snapshot reader (MVCC path).
    snapshot_reads: int = 0
    #: Snapshot-pinned reads whose pinned vector was already superseded
    #: when the batch ran (the read resolved archived shard state).
    stale_reads: int = 0
    #: Transport counters of the process-backed shard pool
    #: (:class:`repro.sharding.procpool.IpcSnapshot`: summaries exchanged,
    #: pipe vs shared-memory messages and bytes); ``None`` under
    #: ``executor="threads"``.
    ipc: Optional[Any] = None
    #: Coordinator merge-engine counters
    #: (:class:`repro.sharding.merge.MergeStatsSnapshot`: full vs
    #: incremental merges, convolutions, reused partial products);
    #: ``None`` when no coordinator has been built yet.
    merge: Optional[Any] = None
    #: Robustness counters (the self-healing serving path).
    #: Workers respawned by the pool supervisor (mirrors the pool's
    #: ``restarts`` IPC counter; 0 under ``executor="threads"``).
    worker_restarts: int = 0
    #: Executor-level retries of transient worker failures.
    retries: int = 0
    #: Queries that missed their ``deadline_ms``.
    deadline_exceeded: int = 0
    #: Per-shard circuit-breaker open transitions.
    breaker_open: int = 0
    #: Answers served from the last good cached answer (``stale=True``).
    stale_served: int = 0
    #: Answers served fresh over the merged tree minus dead shards
    #: (``degraded=True``).
    degraded_served: int = 0
    #: Updates accepted into a dead shard's bounded queue.
    updates_queued: int = 0
    #: Requests answered from the cross-session result cache (completed
    #: answers at an unchanged shard-version vector and backend).
    result_cache_hits: int = 0
    #: Requests that consulted the result cache and fell through to a
    #: real execution.
    result_cache_misses: int = 0
    #: Plans answered from a fused multi-query artifact sweep (several
    #: queries wanting the rank-matrix artifact at different ``k``,
    #: materialized once at ``k_max`` and sliced).
    fused_plans: int = 0

    @property
    def coalesce_rate(self) -> float:
        """Fraction of submissions served by piggybacking on an in-flight
        identical query."""
        total = self.queries + self.coalesced
        return self.coalesced / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe document of every counter (``/metrics`` wire form).

        ``queries_by_kind`` becomes a plain ``{kind: count}`` object; the
        nested ``ipc`` / ``merge`` snapshots become flat dictionaries of
        their dataclass fields (or ``None``).  :meth:`from_dict` rebuilds
        an equal snapshot, nested snapshots included.
        """
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("queries_by_kind", "ipc", "merge")
        }
        data["queries_by_kind"] = dict(self.queries_by_kind)
        data["ipc"] = (
            None
            if self.ipc is None
            else {f.name: getattr(self.ipc, f.name) for f in fields(self.ipc)}
        )
        data["merge"] = (
            None
            if self.merge is None
            else {
                f.name: getattr(self.merge, f.name)
                for f in fields(self.merge)
            }
        )
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ServingMetricsSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output.

        The nested transport/merge documents come back as real
        :class:`~repro.sharding.procpool.IpcSnapshot` /
        :class:`~repro.sharding.merge.MergeStatsSnapshot` instances, so
        delta arithmetic keeps working on decoded snapshots.
        """
        kwargs = dict(data)
        kwargs["queries_by_kind"] = tuple(
            sorted((str(k), int(v)) for k, v in data["queries_by_kind"].items())
        )
        ipc = data.get("ipc")
        if ipc is not None:
            from repro.sharding.procpool import IpcSnapshot

            kwargs["ipc"] = IpcSnapshot(**ipc)
        merge = data.get("merge")
        if merge is not None:
            from repro.sharding.merge import MergeStatsSnapshot

            kwargs["merge"] = MergeStatsSnapshot(**merge)
        known = {f.name for f in fields(ServingMetricsSnapshot)}
        return ServingMetricsSnapshot(
            **{k: v for k, v in kwargs.items() if k in known}
        )

    def __sub__(
        self, other: "ServingMetricsSnapshot"
    ) -> "ServingMetricsSnapshot":
        """Counter delta between two snapshots (IpcSnapshot-style).

        Monotone counters subtract; point-in-time gauges (latency
        quantiles, mean batch size) are kept from ``self``; the nested
        ``ipc`` / ``merge`` snapshots subtract when both sides carry
        them.
        """
        other_kinds = dict(other.queries_by_kind)
        return replace(
            self,
            queries=self.queries - other.queries,
            coalesced=self.coalesced - other.coalesced,
            batches=self.batches - other.batches,
            updates=self.updates - other.updates,
            invalidations=self.invalidations - other.invalidations,
            snapshot_reads=self.snapshot_reads - other.snapshot_reads,
            stale_reads=self.stale_reads - other.stale_reads,
            worker_restarts=self.worker_restarts - other.worker_restarts,
            retries=self.retries - other.retries,
            deadline_exceeded=self.deadline_exceeded - other.deadline_exceeded,
            breaker_open=self.breaker_open - other.breaker_open,
            stale_served=self.stale_served - other.stale_served,
            degraded_served=self.degraded_served - other.degraded_served,
            updates_queued=self.updates_queued - other.updates_queued,
            result_cache_hits=self.result_cache_hits
            - other.result_cache_hits,
            result_cache_misses=self.result_cache_misses
            - other.result_cache_misses,
            fused_plans=self.fused_plans - other.fused_plans,
            queries_by_kind=tuple(
                (kind, count - other_kinds.get(kind, 0))
                for kind, count in self.queries_by_kind
            ),
            ipc=(
                self.ipc - other.ipc
                if self.ipc is not None and other.ipc is not None
                else self.ipc
            ),
            merge=(
                self.merge - other.merge
                if self.merge is not None and other.merge is not None
                else self.merge
            ),
        )


@dataclass
class ServingMetrics:
    """Mutable counters owned by one executor."""

    queries: int = 0
    coalesced: int = 0
    batches: int = 0
    updates: int = 0
    invalidations: int = 0
    snapshot_reads: int = 0
    stale_reads: int = 0
    retries: int = 0
    deadline_exceeded: int = 0
    breaker_open: int = 0
    stale_served: int = 0
    degraded_served: int = 0
    updates_queued: int = 0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    fused_plans: int = 0
    batched_requests: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    queries_by_kind: Dict[str, int] = field(default_factory=dict)

    def count_query(self, kind: str) -> None:
        self.queries += 1
        self.queries_by_kind[kind] = self.queries_by_kind.get(kind, 0) + 1

    def count_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_requests += size

    def snapshot(
        self, ipc: Optional[Any] = None, merge: Optional[Any] = None
    ) -> ServingMetricsSnapshot:
        return ServingMetricsSnapshot(
            ipc=ipc,
            merge=merge,
            queries=self.queries,
            coalesced=self.coalesced,
            batches=self.batches,
            updates=self.updates,
            invalidations=self.invalidations,
            snapshot_reads=self.snapshot_reads,
            stale_reads=self.stale_reads,
            worker_restarts=getattr(ipc, "restarts", 0),
            retries=self.retries,
            deadline_exceeded=self.deadline_exceeded,
            breaker_open=self.breaker_open,
            stale_served=self.stale_served,
            degraded_served=self.degraded_served,
            updates_queued=self.updates_queued,
            result_cache_hits=self.result_cache_hits,
            result_cache_misses=self.result_cache_misses,
            fused_plans=self.fused_plans,
            mean_batch_size=(
                self.batched_requests / self.batches if self.batches else 0.0
            ),
            latency_mean=self.latency.mean(),
            latency_p50=self.latency.percentile(0.50),
            latency_p95=self.latency.percentile(0.95),
            queries_by_kind=tuple(sorted(self.queries_by_kind.items())),
        )
