"""The asyncio HTTP front door over a :class:`ServingExecutor`.

:class:`ReproServer` binds an ``asyncio.start_server`` listener and maps a
small MAAS-style resource tree onto the serving layer:

==============================  =======================================
``POST /query``                 one query or a micro-batch (fused by the
                                executor's batch loop)
``POST /update``                one tuple update
``GET  /health``                liveness + breaker / drain state
``GET  /metrics``               full snapshot + delta since last scrape
``GET  /plans/<fingerprint>``   the planner's explain() for a seen query
``GET  /shards``                per-shard version / size / breaker state
``POST /admin/drain``           stop admitting, finish in-flight, stop
==============================  =======================================

Robustness is part of the protocol, not an afterthought: admission
control sheds load with 429 + ``Retry-After`` once ``max_inflight``
queries are in flight, per-request deadlines propagate into
``execute(deadline_ms=...)`` and surface as 504, a shard outage that
exhausts every fallback is 503 (degraded answers, when enabled, still
arrive as 200 with ``degraded: true``), malformed JSON is 400, and every
admission decision is tallied per status in :attr:`ReproServer.admissions`
-- nothing is ever dropped silently.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple, Union

from repro.exceptions import (
    ConsensusError,
    DeadlineExceededError,
    PlanningError,
    ReproError,
    ShardUnavailableError,
)
from repro.query.builder import ConsensusQuery
from repro.query.planner import DEFAULT_PLANNER
from repro.query.wire import loads, query_from_dict
from repro.server.http import (
    HttpError,
    HttpRequest,
    read_request,
    response_bytes,
)
from repro.serving.executor import ServingExecutor
from repro.serving.requests import QueryRequest

#: How many executed queries the ``/plans`` registry remembers.
PLAN_REGISTRY_LIMIT = 1024


class ReproServer:
    """One HTTP listener fronting one serving executor.

    Accepts either a :class:`~repro.models.ShardedDatabase` (an executor
    is built over it with ``executor_options`` and owned by the server)
    or an already-configured :class:`~repro.serving.ServingExecutor`
    (borrowed; the caller keeps lifecycle ownership unless the server
    started it itself).

    ``port=0`` binds an ephemeral port; :attr:`port` reports the real
    one after :meth:`start`.
    """

    def __init__(
        self,
        target: Union[ServingExecutor, Any],
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        retry_after_s: float = 0.05,
        **executor_options: Any,
    ) -> None:
        if isinstance(target, ServingExecutor):
            if executor_options:
                raise ValueError(
                    "executor_options only apply when constructing from a "
                    "database; got an executor and "
                    f"{sorted(executor_options)}"
                )
            self._executor = target
            self._owns_executor = False
        else:
            self._executor = ServingExecutor(target, **executor_options)
            self._owns_executor = True
        self.host = host
        self.port = port
        self._max_inflight = max(0, int(max_inflight))
        self._retry_after = max(0.0, retry_after_s)
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_executor = False
        self._draining = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        #: status code -> admissions resolved with it (every ``/query``
        #: admission decision lands here exactly once).
        self.admissions: Dict[int, int] = {}
        self._seen_queries: "OrderedDict[str, ConsensusQuery]" = OrderedDict()
        self._last_scrape: Optional[Tuple[Any, float]] = None
        self._writers: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def executor(self) -> ServingExecutor:
        return self._executor

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        return self._inflight

    async def start(self) -> "ReproServer":
        """Bind the listener (and start the executor if it isn't)."""
        if self._server is not None:
            return self
        if not self._executor.started:
            await self._executor.start()
            self._started_executor = True
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=1 << 20
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (``repro serve`` / examples)."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def drain(self, timeout_s: float = 10.0) -> Dict[str, Any]:
        """Stop admitting queries, wait for in-flight work, stop the pools.

        The listener stays up -- ``/health`` and ``/metrics`` keep
        answering (status ``draining``) so orchestration can watch the
        drain complete; new ``/query`` admissions get 503.
        """
        self._draining = True
        drained = True
        try:
            await asyncio.wait_for(
                self._idle.wait(), timeout=max(0.0, timeout_s)
            )
        except asyncio.TimeoutError:
            drained = False
        if drained and (self._started_executor or self._owns_executor):
            await self._executor.stop()
        return {
            "drained": drained,
            "inflight": self._inflight,
            "pending": self._executor.pending_count(),
        }

    async def stop(self) -> None:
        """Graceful shutdown: drain, then close the listener."""
        if not self._draining:
            await self.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections would otherwise outlive the loop.
        for writer in list(self._writers):
            writer.close()

    def close(self) -> None:
        """Synchronous teardown for ``finally`` blocks outside the loop."""
        if self._server is not None:
            self._server.close()
            self._server = None
        if self._started_executor or self._owns_executor:
            self._executor.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    writer.write(
                        response_bytes(
                            400,
                            {"error": str(error), "type": "HttpError"},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload, headers = await self._route(request)
                writer.write(
                    response_bytes(
                        status,
                        payload,
                        headers=headers,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _route(
        self, request: HttpRequest
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        parts = request.path_parts()
        try:
            if parts == ("query",):
                if request.method != "POST":
                    return 405, {"error": "POST only"}, None
                return await self._handle_query(request)
            if parts == ("update",):
                if request.method != "POST":
                    return 405, {"error": "POST only"}, None
                return await self._handle_update(request)
            if parts == ("health",):
                if request.method != "GET":
                    return 405, {"error": "GET only"}, None
                return 200, self._health_payload(), None
            if parts == ("metrics",):
                if request.method != "GET":
                    return 405, {"error": "GET only"}, None
                return 200, self._metrics_payload(), None
            if parts == ("shards",):
                if request.method != "GET":
                    return 405, {"error": "GET only"}, None
                return 200, self._shards_payload(), None
            if len(parts) == 2 and parts[0] == "plans":
                if request.method != "GET":
                    return 405, {"error": "GET only"}, None
                return self._handle_plan(parts[1], request)
            if parts == ("admin", "drain"):
                if request.method != "POST":
                    return 405, {"error": "POST only"}, None
                body = self._parse_body(request)
                timeout_s = float(body.get("timeout_s", 10.0))
                return 200, await self.drain(timeout_s), None
            return 404, {"error": f"no such resource: {request.path}"}, None
        except (ConsensusError, PlanningError) as error:
            return 400, self._error_payload(error), None
        except ReproError as error:  # pragma: no cover - defensive
            return 500, self._error_payload(error), None
        except Exception as error:  # pragma: no cover - defensive
            return 500, self._error_payload(error), None

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _parse_body(self, request: HttpRequest) -> Dict[str, Any]:
        if not request.body:
            return {}
        data = loads(request.body)
        if not isinstance(data, dict):
            raise ConsensusError(
                f"request body must be a JSON object, got "
                f"{type(data).__name__!r}"
            )
        return data

    def _parse_query(self, doc: Any) -> ConsensusQuery:
        """One query document -> ConsensusQuery (legacy or declarative)."""
        if not isinstance(doc, dict):
            raise ConsensusError(
                f"a query document must be a JSON object, got "
                f"{type(doc).__name__!r}"
            )
        if "query" in doc:
            return query_from_dict(doc["query"])
        return QueryRequest.from_wire(doc).to_query()

    async def _handle_query(
        self, request: HttpRequest
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        # Admission control happens before any parsing work.
        if self._draining:
            status: int = 503
            payload: Any = {
                "error": "server is draining",
                "type": "ShardUnavailableError",
            }
            self._count_admission(status)
            return status, payload, None
        if self._inflight >= self._max_inflight:
            status = 429
            self._count_admission(status)
            return (
                status,
                {
                    "error": (
                        f"admission queue full "
                        f"({self._inflight}/{self._max_inflight} in flight)"
                    ),
                    "type": "ServerOverloadedError",
                    "retry_after": self._retry_after,
                },
                {"Retry-After": f"{self._retry_after:.3f}"},
            )
        self._inflight += 1
        self._idle.clear()
        status = 500
        try:
            body = self._parse_body(request)
            try:
                deadline_ms = body.get("deadline_ms")
                if deadline_ms is not None:
                    deadline_ms = float(deadline_ms)
            except (TypeError, ValueError):
                raise ConsensusError(
                    f"'deadline_ms' must be a number, got "
                    f"{body.get('deadline_ms')!r}"
                ) from None
            if "queries" in body:
                docs = body["queries"]
                if not isinstance(docs, list) or not docs:
                    raise ConsensusError(
                        "'queries' must be a non-empty JSON array"
                    )
                results = await asyncio.gather(
                    *(self._execute_doc(doc, deadline_ms) for doc in docs)
                )
                statuses = [status for status, _ in results]
                status = 200 if all(s == 200 for s in statuses) else max(
                    statuses
                )
                return (
                    status,
                    {"answers": [payload for _, payload in results]},
                    None,
                )
            query = self._parse_query(body)
            status, payload = await self._execute_one(query, deadline_ms)
            return status, payload, None
        except (ConsensusError, PlanningError) as error:
            status = 400
            return status, self._error_payload(error), None
        except DeadlineExceededError as error:
            status = 504
            return status, self._error_payload(error), None
        except ShardUnavailableError as error:
            status = 503
            return status, self._error_payload(error), None
        except ReproError as error:
            status = 500
            return status, self._error_payload(error), None
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            self._count_admission(status)

    async def _execute_doc(
        self, doc: Any, deadline_ms: Optional[float]
    ) -> Tuple[int, Any]:
        """One micro-batch slot: parse + execute, failures stay in-slot."""
        try:
            query = self._parse_query(doc)
        except (ConsensusError, PlanningError) as error:
            return 400, self._error_payload(error)
        return await self._execute_one(query, deadline_ms)

    async def _execute_one(
        self, query: ConsensusQuery, deadline_ms: Optional[float]
    ) -> Tuple[int, Any]:
        """Execute one parsed query; returns (status, wire payload).

        Used by both the single and micro-batch paths; batch items report
        per-item failures in their answer slot instead of failing the
        whole batch (the executor's batch loop fuses whatever succeeds).
        """
        try:
            answer = await self._executor.execute(
                query, deadline_ms=deadline_ms
            )
        except DeadlineExceededError as error:
            return 504, self._error_payload(error)
        except ShardUnavailableError as error:
            return 503, self._error_payload(error)
        except (ConsensusError, PlanningError) as error:
            return 400, self._error_payload(error)
        except ReproError as error:
            return 500, self._error_payload(error)
        self._remember_query(query)
        return 200, answer.to_wire()

    async def _handle_update(
        self, request: HttpRequest
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        from repro.query.wire import decode_value

        body = self._parse_body(request)
        if "key" not in body:
            raise ConsensusError("an update needs a 'key'")
        key = decode_value(body["key"])
        probability = body.get("probability")
        score = body.get("score")
        try:
            await self._executor.update(
                key,
                probability=None if probability is None else float(probability),
                score=None if score is None else float(score),
            )
        except ShardUnavailableError as error:
            return 503, self._error_payload(error), None
        return (
            200,
            {
                "updated": True,
                "queued": self._executor.queued_update_count(),
            },
            None,
        )

    def _handle_plan(
        self, fingerprint: str, request: HttpRequest
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        query = self._seen_queries.get(fingerprint)
        if query is None and "kind" in request.query:
            # Cold registry: the client may describe the query it means.
            from repro.query.compat import query_for_kind

            k_text = request.query.get("k")
            rebuilt = query_for_kind(
                request.query["kind"],
                int(k_text) if k_text else None,
                (),
            )
            if rebuilt.fingerprint() == fingerprint:
                query = rebuilt
        if query is None:
            return (
                404,
                {
                    "error": (
                        f"no executed query with fingerprint "
                        f"{fingerprint!r} (registry keeps the last "
                        f"{PLAN_REGISTRY_LIMIT})"
                    )
                },
                None,
            )
        session = self._executor.database.coordinator()
        plan = DEFAULT_PLANNER.plan_for(query, session, deployment="served")
        return (
            200,
            {
                "fingerprint": fingerprint,
                "kind": query.kind,
                "route": plan.route,
                "algorithm": plan.algorithm,
                "explain": plan.explain(),
            },
            None,
        )

    # ------------------------------------------------------------------
    # Read-only payloads
    # ------------------------------------------------------------------
    def _health_payload(self) -> Dict[str, Any]:
        database = self._executor.database
        return {
            "status": "draining" if self._draining else "ok",
            "shard_count": database.shard_count,
            "versions": list(database.versions()),
            "open_breakers": list(self._executor.open_breakers()),
            "queued_updates": self._executor.queued_update_count(),
            "inflight": self._inflight,
            "max_inflight": self._max_inflight,
            "pending": self._executor.pending_count(),
        }

    def _metrics_payload(self) -> Dict[str, Any]:
        snapshot = self._executor.metrics()
        now = time.monotonic()
        delta = None
        elapsed_s = None
        if self._last_scrape is not None:
            previous, at = self._last_scrape
            delta = (snapshot - previous).to_dict()
            elapsed_s = now - at
        self._last_scrape = (snapshot, now)
        return {
            "snapshot": snapshot.to_dict(),
            "delta": delta,
            "elapsed_s": elapsed_s,
            "admissions": {
                str(status): count
                for status, count in sorted(self.admissions.items())
            },
        }

    def _shards_payload(self) -> Dict[str, Any]:
        queues = getattr(self._executor, "_update_queues", {})
        open_breakers = set(self._executor.open_breakers())
        shards = []
        for shard in self._executor.database.shards():
            shards.append(
                {
                    "index": shard.index,
                    "version": shard.version,
                    "tuples": len(shard.keys()),
                    "breaker_open": shard.index in open_breakers,
                    "queued_updates": len(queues.get(shard.index, ())),
                }
            )
        return {"shards": shards}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _count_admission(self, status: int) -> None:
        self.admissions[status] = self.admissions.get(status, 0) + 1

    def _remember_query(self, query: ConsensusQuery) -> None:
        fingerprint = query.fingerprint()
        self._seen_queries[fingerprint] = query
        self._seen_queries.move_to_end(fingerprint)
        while len(self._seen_queries) > PLAN_REGISTRY_LIMIT:
            self._seen_queries.popitem(last=False)

    @staticmethod
    def _error_payload(error: Exception) -> Dict[str, Any]:
        return {"error": str(error), "type": type(error).__name__}


class ServerThread:
    """A :class:`ReproServer` on a background thread with its own loop.

    The test-and-tools harness: ``with ServerThread(database) as server``
    boots the front door on an ephemeral loopback port, yields the
    running server (``server.host`` / ``server.port``), and tears it
    down -- drain included -- on exit.  The calling thread stays free to
    drive a blocking :class:`~repro.server.client.ReproClient`.
    """

    def __init__(self, target: Any, **server_options: Any) -> None:
        self._target = target
        self._options = server_options
        self.server: Optional[ReproServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    @property
    def host(self) -> str:
        assert self.server is not None
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def client(self, **options: Any) -> Any:
        from repro.server.client import ReproClient

        return ReproClient(self.host, self.port, **options)

    def start(self) -> "ServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._failure is not None:
            raise RuntimeError(
                f"server thread failed to start: {self._failure!r}"
            ) from self._failure
        if self.server is None:
            raise RuntimeError("server thread did not come up in time")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = ReproServer(self._target, **self._options)

        async def boot() -> None:
            try:
                await server.start()
                self.server = server
            except BaseException as error:
                self._failure = error
            finally:
                self._ready.set()

        try:
            loop.run_until_complete(boot())
            if self._failure is None:
                loop.run_forever()
        except BaseException as error:  # pragma: no cover - defensive
            self._failure = error
            self._ready.set()
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()

    def run_coroutine(self, coroutine: Any, timeout: float = 30.0) -> Any:
        """Run one coroutine on the server's loop from the calling thread."""
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=timeout)

    def stop(self) -> None:
        if self._thread is None or self._loop is None:
            return
        if self.server is not None:
            try:
                self.run_coroutine(self.server.stop())
            except Exception:
                self.server.close()
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = ["PLAN_REGISTRY_LIMIT", "ReproServer", "ServerThread"]
