"""The generating-function framework of Section 3.3 (Theorem 1).

Given an and/xor tree and an assignment of a formal variable (or the constant
1) to each leaf, the generating function is defined recursively:

* a leaf contributes its variable (or 1),
* a xor node contributes ``(1 - Σ p_i) + Σ p_i * F_i``,
* an and node contributes ``Π F_i``.

Theorem 1 states that the coefficient of ``Π x_j^{i_j}`` equals the total
probability of the possible worlds containing exactly ``i_j`` leaves labelled
``x_j`` for every ``j``.  All probability computations in the paper --
world-size distributions, rank-position probabilities, Jaccard distances,
co-occurrence probabilities -- are coefficient extractions from such
polynomials.

Three entry points are provided, matching the three polynomial
representations in :mod:`repro.polynomials`; degree truncation keeps Top-k
computations polynomial in ``k`` rather than in the database size.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.andxor.nodes import AndNode, Leaf, Node, XorNode
from repro.andxor.tree import AndXorTree
from repro.engine import get_backend
from repro.exceptions import ModelError
from repro.polynomials import (
    BivariatePolynomial,
    MultivariatePolynomial,
    UnivariatePolynomial,
)

LeafVariable = Callable[[Leaf], Optional[str]]
LeafPredicate = Callable[[Leaf], bool]


# ----------------------------------------------------------------------
# General multivariate generating function
# ----------------------------------------------------------------------
def generating_function(
    tree: AndXorTree,
    variable_of: LeafVariable,
    variables: Sequence[str],
    max_degrees: Mapping[str, int] | None = None,
) -> MultivariatePolynomial:
    """Evaluate the generating function with an arbitrary variable assignment.

    Parameters
    ----------
    tree:
        The and/xor tree.
    variable_of:
        Function mapping each leaf to the name of its variable, or ``None``
        for the constant 1.
    variables:
        The ordered universe of variable names.
    max_degrees:
        Optional per-variable truncation degrees.
    """
    variables = tuple(variables)
    one = MultivariatePolynomial.one(variables, max_degrees=max_degrees)

    def recurse(node: Node) -> MultivariatePolynomial:
        if isinstance(node, Leaf):
            name = variable_of(node)
            if name is None:
                return one
            return MultivariatePolynomial.variable(
                variables, name, max_degrees=max_degrees
            )
        if isinstance(node, XorNode):
            result = MultivariatePolynomial.constant(
                variables, node.none_probability, max_degrees=max_degrees
            )
            for child, probability in node.edges():
                if probability == 0.0:
                    continue
                result = result + recurse(child) * probability
            return result
        if isinstance(node, AndNode):
            result = one
            for child in node.children():
                result = result * recurse(child)
            return result
        raise ModelError(f"unsupported node type {type(node).__name__}")

    return recurse(tree.root)


# ----------------------------------------------------------------------
# Univariate specialisation
# ----------------------------------------------------------------------
def univariate_generating_function(
    tree: AndXorTree,
    marked: LeafPredicate | None = None,
    max_degree: int | None = None,
) -> UnivariatePolynomial:
    """Generating function with one variable ``x`` on the marked leaves.

    ``marked`` defaults to marking every leaf, in which case the coefficient
    of ``x**i`` is ``Pr(|pw| = i)`` (Example 1 of the paper).  Marking only a
    subset ``S`` gives ``Pr(|pw ∩ S| = i)`` (Example 2).
    """
    if marked is None:
        marked = lambda leaf: True  # noqa: E731 - tiny predicate

    variable = UnivariatePolynomial.variable(max_degree=max_degree)
    one = UnivariatePolynomial.one(max_degree=max_degree)

    def recurse(node: Node) -> UnivariatePolynomial:
        if isinstance(node, Leaf):
            return variable if marked(node) else one
        if isinstance(node, XorNode):
            result = UnivariatePolynomial.constant(
                node.none_probability, max_degree=max_degree
            )
            for child, probability in node.edges():
                if probability == 0.0:
                    continue
                result = result + recurse(child) * probability
            return result
        if isinstance(node, AndNode):
            # Multiply-accumulate the children's coefficient lists in one
            # backend call instead of materialising the intermediate
            # polynomial after every factor.
            factors = [recurse(child)._coefficients for child in node.children()]
            if not factors:
                return one
            out_len = sum(len(factor) - 1 for factor in factors) + 1
            if max_degree is not None:
                out_len = min(out_len, max_degree + 1)
            product = get_backend().polynomial_product(factors, out_len)
            return UnivariatePolynomial(product, max_degree=max_degree)
        raise ModelError(f"unsupported node type {type(node).__name__}")

    return recurse(tree.root)


# ----------------------------------------------------------------------
# Conditional univariate specialisation
# ----------------------------------------------------------------------
def conditional_univariate_generating_function(
    tree: AndXorTree,
    pinned_choices: Mapping[int, int],
    marked: LeafPredicate,
    max_degree: int | None = None,
) -> UnivariatePolynomial:
    """Univariate generating function conditioned on fixed xor choices.

    ``pinned_choices`` maps xor-node ids to the index of the child that the
    node is known to have picked (e.g. the root path of a leaf conditioned to
    be present, as returned by :meth:`AndXorTree.leaf_choices`).  Pinned xor
    nodes contribute their chosen child with probability one -- conditioning
    on a leaf's presence is exactly fixing the independent xor choices on its
    root path -- so the coefficient of ``x**i`` is the *conditional*
    probability that exactly ``i`` marked leaves are present.

    This is the kernel of the general and/xor rank path: one conditional
    univariate polynomial per leaf replaces the bivariate generating
    function per alternative, and the and-node products batch through the
    backend's multiply-accumulate kernel.
    """
    variable = UnivariatePolynomial.variable(max_degree=max_degree)
    one = UnivariatePolynomial.one(max_degree=max_degree)

    def recurse(node: Node) -> UnivariatePolynomial:
        if isinstance(node, Leaf):
            return variable if marked(node) else one
        if isinstance(node, XorNode):
            pinned = pinned_choices.get(id(node))
            if pinned is not None:
                return recurse(node.edges()[pinned][0])
            result = UnivariatePolynomial.constant(
                node.none_probability, max_degree=max_degree
            )
            for child, probability in node.edges():
                if probability == 0.0:
                    continue
                result = result + recurse(child) * probability
            return result
        if isinstance(node, AndNode):
            factors = [
                recurse(child)._coefficients for child in node.children()
            ]
            if not factors:
                return one
            out_len = sum(len(factor) - 1 for factor in factors) + 1
            if max_degree is not None:
                out_len = min(out_len, max_degree + 1)
            product = get_backend().polynomial_product(factors, out_len)
            return UnivariatePolynomial(product, max_degree=max_degree)
        raise ModelError(f"unsupported node type {type(node).__name__}")

    return recurse(tree.root)


# ----------------------------------------------------------------------
# Bivariate specialisation
# ----------------------------------------------------------------------
def bivariate_generating_function(
    tree: AndXorTree,
    variable_of: LeafVariable,
    max_degree_x: int | None = None,
    max_degree_y: int | None = None,
) -> BivariatePolynomial:
    """Generating function in two variables ``x`` and ``y``.

    ``variable_of`` must return ``"x"``, ``"y"`` or ``None`` for each leaf.
    This is the workhorse for rank-position probabilities (Example 3) and
    expected Jaccard distances (Lemma 1).
    """
    x = BivariatePolynomial.variable_x(max_degree_x, max_degree_y)
    y = BivariatePolynomial.variable_y(max_degree_x, max_degree_y)
    one = BivariatePolynomial.one(max_degree_x, max_degree_y)

    def recurse(node: Node) -> BivariatePolynomial:
        if isinstance(node, Leaf):
            name = variable_of(node)
            if name is None:
                return one
            if name == "x":
                return x
            if name == "y":
                return y
            raise ModelError(
                f"bivariate generating function expects 'x', 'y' or None, "
                f"got {name!r}"
            )
        if isinstance(node, XorNode):
            result = BivariatePolynomial.constant(
                node.none_probability, max_degree_x, max_degree_y
            )
            for child, probability in node.edges():
                if probability == 0.0:
                    continue
                result = result + recurse(child) * probability
            return result
        if isinstance(node, AndNode):
            result = one
            for child in node.children():
                result = result * recurse(child)
            return result
        raise ModelError(f"unsupported node type {type(node).__name__}")

    return recurse(tree.root)
