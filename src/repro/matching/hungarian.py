"""The Hungarian algorithm for the (rectangular) assignment problem.

The implementation follows the classical potentials / shortest-augmenting-path
formulation and runs in ``O(rows^2 * cols)`` time.  It minimises the total
cost of assigning every row to a distinct column (requiring
``rows <= cols``); a thin wrapper converts maximum-profit instances into
minimum-cost ones.

The paper invokes an ``O(n k sqrt(n))`` matching algorithm [Micali-Vazirani];
any polynomial exact assignment solver preserves the results, and the
Hungarian algorithm is the standard practical choice (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import MatchingError

_INF = float("inf")


def minimize_cost_assignment(
    cost: Sequence[Sequence[float]],
) -> Tuple[List[int], float]:
    """Solve the rectangular assignment problem (minimisation).

    Parameters
    ----------
    cost:
        A ``rows x cols`` cost matrix with ``rows <= cols``.

    Returns
    -------
    (assignment, total_cost):
        ``assignment[i]`` is the column assigned to row ``i`` (all distinct)
        and ``total_cost`` the sum of the selected entries, which is minimal.
    """
    rows = len(cost)
    if rows == 0:
        return [], 0.0
    cols = len(cost[0])
    if any(len(row) != cols for row in cost):
        raise MatchingError("cost matrix rows have inconsistent lengths")
    if rows > cols:
        raise MatchingError(
            f"assignment requires rows <= cols, got {rows} rows x {cols} cols"
        )

    # Potentials for rows (u) and columns (v); p[j] is the row matched to
    # column j (0 means unmatched); way[j] remembers the augmenting path.
    u = [0.0] * (rows + 1)
    v = [0.0] * (cols + 1)
    p = [0] * (cols + 1)
    way = [0] * (cols + 1)

    for i in range(1, rows + 1):
        p[0] = i
        j0 = 0
        minv = [_INF] * (cols + 1)
        used = [False] * (cols + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = _INF
            j1 = -1
            row_cost = cost[i0 - 1]
            for j in range(1, cols + 1):
                if used[j]:
                    continue
                current = row_cost[j - 1] - u[i0] - v[j]
                if current < minv[j]:
                    minv[j] = current
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(cols + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment along the path found.
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * rows
    for j in range(1, cols + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
    total = sum(cost[i][assignment[i]] for i in range(rows))
    return assignment, total


def maximize_profit_assignment(
    profit: Sequence[Sequence[float]],
) -> Tuple[List[int], float]:
    """Solve the rectangular assignment problem (maximisation).

    ``profit`` is a ``rows x cols`` matrix with ``rows <= cols``; every row is
    assigned to a distinct column so that the total profit is maximal.
    Returns ``(assignment, total_profit)``.
    """
    negated = [[-value for value in row] for row in profit]
    assignment, negative_total = minimize_cost_assignment(negated)
    return assignment, -negative_total
