"""Top-k consensus under the symmetric difference metric (Section 5.2).

* **Theorem 3 (mean answer)** -- the expected distance decomposes as
  ``E[d_Δ(τ, τ_pw)] = (k + Σ_t Pr(r(t)<=k) - 2 Σ_{t in τ} Pr(r(t)<=k)) / 2k``,
  so the mean answer is simply the ``k`` tuples with the largest
  ``Pr(r(t) <= k)``.  This coincides with the Global-Top-k answer and with a
  probabilistic-threshold (PT-k) answer whose threshold is tuned to return
  exactly ``k`` tuples.
* **Theorem 4 (median answer)** -- the median answer is the Top-k answer of a
  possible world maximising ``Σ_{t in τ} Pr(r(t) <= k)``.  For every score
  threshold ``a`` the candidate answers are exactly the size-``k`` possible
  worlds of the restricted tree ``T^a`` (all leaves with score at least
  ``a``); a knapsack-style dynamic program over the tree finds the best one,
  and the best over all thresholds is the median answer.

For tuple-independent databases (tuple-level uncertainty only) the median
answer additionally admits an ``O(n log k)`` sweep: fixing the lowest-scored
member of the answer, the remaining ``k-1`` members must be chosen among the
higher-scored tuples, certain tuples (probability one) are forced in, and the
rest greedily maximise ``Pr(r(t) <= k)``.  Both routes are implemented and
cross-checked; the generic DP handles every and/xor tree.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.andxor.nodes import AndNode, Leaf, Node, XorNode
from repro.andxor.tree import AndXorTree
from repro.consensus.topk.common import (
    TopKAnswer,
    TreeOrStatistics,
    as_session,
    order_by_score,
)
from repro.core.tuples import TupleAlternative
from repro.exceptions import ConsensusError, InfeasibleAnswerError, ModelError

_NEG_INF = float("-inf")


# ----------------------------------------------------------------------
# Expected distance and the mean answer (Theorem 3)
# ----------------------------------------------------------------------
def expected_topk_symmetric_difference(
    source: TreeOrStatistics,
    answer: Sequence[Hashable],
    k: int,
    normalized: bool = True,
) -> float:
    """Expected symmetric difference between ``answer`` and the random Top-k.

    Uses the closed form of Theorem 3's proof; the normalised version divides
    by ``2k``.
    """
    session = as_session(source)
    answer_set = set(answer)
    membership = session.top_k_membership(k)
    for key in answer_set:
        if key not in membership:
            raise ConsensusError(f"answer mentions unknown tuple {key!r}")
    total = (
        k
        + sum(membership.values())
        - 2.0 * sum(membership[key] for key in answer_set)
    )
    if normalized:
        return total / (2.0 * k)
    return total


def mean_topk_symmetric_difference(
    source: TreeOrStatistics, k: int
) -> Tuple[TopKAnswer, float]:
    """The mean Top-k answer under ``d_Δ`` (Theorem 3).

    Returns the ``k`` tuples with the largest ``Pr(r(t) <= k)`` (presented in
    decreasing score order; the metric ignores order) and the expected
    normalised distance.
    """
    session = as_session(source)
    membership = session.top_k_membership(k)
    chosen = sorted(
        membership, key=lambda key: (-membership[key], repr(key))
    )[:k]
    answer = order_by_score(session, chosen)
    return answer, expected_topk_symmetric_difference(session, answer, k)


# ----------------------------------------------------------------------
# Median answer (Theorem 4): dynamic program over restricted trees
# ----------------------------------------------------------------------
def _merge_size_tables(
    left: List[Tuple[float, Tuple[TupleAlternative, ...]]],
    right: List[Tuple[float, Tuple[TupleAlternative, ...]]],
    k: int,
) -> List[Tuple[float, Tuple[TupleAlternative, ...]]]:
    """Knapsack combination of two children's size-indexed best tables."""
    merged: List[Tuple[float, Tuple[TupleAlternative, ...]]] = [
        (_NEG_INF, ()) for _ in range(k + 1)
    ]
    for size_left, (value_left, world_left) in enumerate(left):
        if value_left == _NEG_INF:
            continue
        for size_right, (value_right, world_right) in enumerate(right):
            if value_right == _NEG_INF:
                continue
            size = size_left + size_right
            if size > k:
                break
            value = value_left + value_right
            if value > merged[size][0]:
                merged[size] = (value, world_left + world_right)
    return merged


def _best_worlds_by_size(
    node: Node, weight: Dict[Hashable, float], k: int
) -> List[Tuple[float, Tuple[TupleAlternative, ...]]]:
    """For each size ``0..k``: the best-weight possible world of that size.

    Entries are ``(total weight, witness world)`` with ``-inf`` marking
    infeasible sizes.  Weights are per tuple key (``Pr(r(t) <= k)``).
    """
    empty_only: List[Tuple[float, Tuple[TupleAlternative, ...]]] = [
        (_NEG_INF, ()) for _ in range(k + 1)
    ]
    if isinstance(node, Leaf):
        table = list(empty_only)
        if k >= 1:
            table[1] = (weight[node.alternative.key], (node.alternative,))
        return table
    if isinstance(node, AndNode):
        table = list(empty_only)
        table[0] = (0.0, ())
        for child in node.children():
            table = _merge_size_tables(
                table, _best_worlds_by_size(child, weight, k), k
            )
        return table
    if isinstance(node, XorNode):
        table = list(empty_only)
        if node.none_probability > 0.0:
            table[0] = (0.0, ())
        for child, probability in node.edges():
            if probability <= 0.0:
                continue
            child_table = _best_worlds_by_size(child, weight, k)
            for size in range(k + 1):
                if child_table[size][0] > table[size][0]:
                    table[size] = child_table[size]
        return table
    raise ModelError(f"unsupported node type {type(node).__name__}")


def _median_topk_tuple_independent(
    layout: Sequence[Tuple[Hashable, float, float]],
    membership: Dict[Hashable, float],
    k: int,
) -> Optional[List[Hashable]]:
    """O(n log k) median Top-k answer for tuple-independent databases.

    ``layout`` lists ``(key, presence probability, score)`` sorted by
    decreasing score.  Fixing the answer's lowest-scored member ``t_j``, the
    other ``k - 1`` members come from the higher-scored tuples: tuples with
    probability one are forced in (they cannot be absent from any world), the
    rest are chosen greedily by ``Pr(r(t) <= k)``.  Returns None when no
    possible world has ``k`` tuples.
    """
    import heapq

    best_value = _NEG_INF
    best_members: Optional[List[Hashable]] = None
    forced: List[Hashable] = []
    forced_value = 0.0
    # Min-heap over (membership value, key) of the currently selected
    # optional members; it always holds exactly min(slots, available) items.
    heap: List[Tuple[float, int, Hashable]] = []
    heap_value = 0.0
    counter = 0
    for j, (key, probability, _) in enumerate(layout):
        slots = k - 1 - len(forced)
        if slots < 0:
            break  # more certain higher-scored tuples than free slots
        # Shrink the optional selection if forced members ate its slots.
        while len(heap) > slots:
            value, _, _ = heapq.heappop(heap)
            heap_value -= value
        if probability > 0.0 and j >= k - 1 and len(heap) == slots:
            candidate_value = membership[key] + forced_value + heap_value
            if candidate_value > best_value + 1e-15:
                best_value = candidate_value
                best_members = (
                    [key]
                    + list(forced)
                    + [item_key for _, _, item_key in heap]
                )
        # Add the current tuple to the pool available to later thresholds.
        if probability >= 1.0 - 1e-12:
            forced.append(key)
            forced_value += membership[key]
        elif probability > 0.0:
            slots = k - 1 - len(forced)
            counter += 1
            if len(heap) < slots:
                heapq.heappush(heap, (membership[key], counter, key))
                heap_value += membership[key]
            elif heap and membership[key] > heap[0][0]:
                removed, _, _ = heapq.heapreplace(
                    heap, (membership[key], counter, key)
                )
                heap_value += membership[key] - removed
    return best_members


def median_topk_symmetric_difference(
    source: TreeOrStatistics, k: int
) -> Tuple[TopKAnswer, float]:
    """The median Top-k answer under ``d_Δ`` (Theorem 4).

    Iterates over every candidate score threshold ``a``; for each, restricts
    the tree to leaves scoring at least ``a`` and finds the possible world of
    size exactly ``k`` maximising ``Σ Pr(r(t) <= k)`` by dynamic programming.
    The best candidate over all thresholds is the Top-k answer of some
    possible world, and no possible world has a better Top-k answer.

    Tuple-independent databases are detected automatically and solved with
    the ``O(n log k)`` sweep described in the module docstring.
    """
    session = as_session(source)
    tree = session.tree
    membership = session.top_k_membership(k)
    layout = session.independent_tuple_layout()
    if layout is not None:
        members = _median_topk_tuple_independent(layout, membership, k)
        if members is None:
            raise InfeasibleAnswerError(
                f"no possible world contains {k} tuples; the median Top-{k} "
                "answer does not exist"
            )
        score_of = {key: score for key, _, score in layout}
        ordered = tuple(
            sorted(members, key=lambda key: -score_of[key])
        )
        return ordered, expected_topk_symmetric_difference(
            session, ordered, k
        )
    thresholds = sorted(
        {
            session.score_of(alternative)
            for alternative in tree.alternatives()
        },
        reverse=True,
    )
    best_value = _NEG_INF
    best_world: Optional[Tuple[TupleAlternative, ...]] = None
    for threshold in thresholds:
        restricted = tree.restrict(
            lambda leaf: session.score_of(leaf.alternative) >= threshold
        )
        if len(restricted.leaves) < k:
            continue
        table = _best_worlds_by_size(restricted.root, membership, k)
        value, world = table[k]
        if value > best_value:
            best_value = value
            best_world = world
    if best_world is None:
        raise InfeasibleAnswerError(
            f"no possible world contains {k} tuples; the median Top-{k} "
            "answer does not exist"
        )
    ordered = tuple(
        alternative.key
        for alternative in sorted(
            best_world,
            key=lambda alternative: -session.score_of(alternative),
        )
    )
    return ordered, expected_topk_symmetric_difference(session, ordered, k)
