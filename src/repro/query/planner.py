"""The hardness-aware query planner.

The paper's central contribution is a taxonomy: every consensus query /
distance-function pair comes with an exact PTIME algorithm, an
approximation with a guarantee, or an NP-hardness result that forces
Monte-Carlo estimation.  :class:`Planner` encodes that taxonomy as data
(:data:`HARDNESS_MAP`), inspects the execution target (model layout,
database size, sharding, active backend) and picks the execution path:

* **exact** -- the PTIME kernel (or, for NP-hard distances on tiny
  databases, exhaustive enumeration);
* **approximate** -- the paper's approximation algorithm (``H_k`` greedy
  for the intersection metric, pivot aggregation for Kendall tau);
* **sample** -- the batched :class:`~repro.engine.MonteCarloSampler` with
  confidence-interval-driven sample sizing, the fallback the hardness
  results prescribe.

Plans are memoized per session and per query (dropped when the session's
generation changes), so the planner adds one dictionary lookup to a warm
serving dispatch.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.andxor.nodes import AndNode, Leaf, XorNode
from repro.andxor.rank_probabilities import RankStatistics
from repro.andxor.tree import AndXorTree
from repro.exceptions import PlanningError
from repro.query.builder import ConsensusQuery
from repro.query.plan import (
    ExecutionPlan,
    ExecutionResult,
    HardnessEntry,
    TargetProfile,
)
from repro.session import QuerySession


# ----------------------------------------------------------------------
# The paper's hardness map
# ----------------------------------------------------------------------
#: ``(family, metric, statistic) -> HardnessEntry``.  ``explain()`` surfaces
#: these entries, naming the paper result behind every route choice.
HARDNESS_MAP: Dict[Tuple[str, Optional[str], str], HardnessEntry] = {
    ("topk", "symmetric_difference", "mean"): HardnessEntry(
        "ptime",
        "Theorem 3",
        "the mean Top-k answer under d_Delta is the k tuples with the "
        "largest Pr(r(t) <= k), one rank-matrix sweep",
    ),
    ("topk", "symmetric_difference", "median"): HardnessEntry(
        "ptime",
        "Theorem 4",
        "the median Top-k answer under d_Delta is recovered exactly from "
        "per-size best-world tables",
    ),
    ("topk", "footrule", "mean"): HardnessEntry(
        "ptime",
        "Section 5.4",
        "the mean Top-k answer under Spearman footrule reduces to one "
        "min-cost assignment over the Upsilon tables",
    ),
    ("topk", "intersection", "mean"): HardnessEntry(
        "ptime",
        "Section 5.3",
        "exact mean answer under the intersection metric; an H_k-factor "
        "greedy approximation is also available",
    ),
    ("topk", "kendall", "mean"): HardnessEntry(
        "np-hard",
        "Section 5.5",
        "exact mean answers under Kendall tau are NP-hard (Kemeny rank "
        "aggregation embeds); the paper prescribes the footrule "
        "2-approximation, pivot aggregation, or Monte-Carlo estimation",
    ),
    ("world", "symmetric_difference", "mean"): HardnessEntry(
        "ptime",
        "Theorem 2",
        "the mean world under d_Delta keeps every alternative with "
        "membership probability > 1/2",
    ),
    ("world", "symmetric_difference", "median"): HardnessEntry(
        "ptime",
        "Corollary 1 / Section 4.1",
        "exact tree DP on and/xor trees; NP-hard under arbitrary "
        "correlations (MAX-2-SAT reduction)",
    ),
    ("world", "jaccard", "mean"): HardnessEntry(
        "ptime",
        "Lemma 2",
        "the mean world under Jaccard is a prefix of the tuples sorted by "
        "decreasing probability (prefix structure optimal for "
        "tuple-independent layouts)",
    ),
    ("world", "jaccard", "median"): HardnessEntry(
        "ptime",
        "Section 4.2",
        "the median world under Jaccard scans prefixes of per-block "
        "highest-probability representatives (BID layouts)",
    ),
    ("membership", None, "mean"): HardnessEntry(
        "ptime",
        "Section 3",
        "Pr(r(t) <= k) falls out of the truncated rank generating "
        "functions in one backend sweep",
    ),
    ("expected_ranks", None, "mean"): HardnessEntry(
        "ptime",
        "Section 5.1",
        "expected ranks are linear functionals of the rank distribution",
    ),
    ("ranking", None, "mean"): HardnessEntry(
        "ptime",
        "Section 7 (baselines)",
        "prior Top-k ranking semantics evaluated for comparison",
    ),
    ("aggregate", None, "mean"): HardnessEntry(
        "ptime",
        "Section 6.1",
        "the mean group-by count answer is the vector of expected counts",
    ),
    ("aggregate", None, "median"): HardnessEntry(
        "approximation",
        "Section 6.1",
        "the closest possible count vector is recovered by min-cost-flow "
        "rounding of the expected counts",
    ),
}


def hardness_of(query: ConsensusQuery) -> HardnessEntry:
    """The paper's hardness result behind one query."""
    metric = query.metric if query.family in ("topk", "world") else None
    statistic = query.statistic if query.family in (
        "topk", "world", "aggregate"
    ) else "mean"
    try:
        return HARDNESS_MAP[(query.family, metric, statistic)]
    except KeyError:  # pragma: no cover - builder validation prevents this
        raise PlanningError(
            f"no hardness entry for {query.family}/{metric}/{statistic}"
        ) from None


# ----------------------------------------------------------------------
# Target resolution
# ----------------------------------------------------------------------
def resolve_session(target: Any) -> Tuple[QuerySession, str]:
    """Coerce any supported target into ``(session, deployment)``.

    Accepts a :class:`~repro.session.QuerySession` (or the sharded
    coordinator), a :class:`~repro.andxor.rank_probabilities.RankStatistics`,
    a bare :class:`~repro.andxor.tree.AndXorTree`, any
    :class:`~repro.models.relation.ProbabilisticRelation` (via its tree), a
    :class:`~repro.models.sharded.ShardedDatabase` (via its coordinator), a
    :class:`~repro.serving.ServingExecutor` (via its database's
    coordinator) or a :class:`~repro.query.Connection`.
    """
    if isinstance(target, QuerySession):
        return target, target.deployment
    if isinstance(target, RankStatistics):
        return target.session(), "local"
    if isinstance(target, AndXorTree):
        return QuerySession(target), "local"
    # A Connection exposes its resolved session/deployment directly
    # (checked by duck-typing to avoid an import cycle with connection.py).
    session = getattr(target, "session", None)
    if isinstance(session, QuerySession):
        return session, getattr(target, "deployment", session.deployment)
    # ShardedDatabase: a coordinator() factory, no tree of its own.
    coordinator = getattr(target, "coordinator", None)
    if callable(coordinator):
        resolved = coordinator()
        if isinstance(resolved, QuerySession):
            return resolved, "sharded"
    # ServingExecutor: answers come from its database's coordinator.
    database = getattr(target, "database", None)
    if database is not None:
        inner = getattr(database, "coordinator", None)
        if callable(inner):
            resolved = inner()
            if isinstance(resolved, QuerySession):
                return resolved, "served"
    # Any relation-like object backed by an and/xor tree.  Prefer the
    # relation's cached RankStatistics so repeated connects against the
    # same database share one warm session.
    statistics = getattr(target, "rank_statistics", None)
    if callable(statistics):
        resolved = statistics()
        if isinstance(resolved, RankStatistics):
            return resolved.session(), "local"
    tree = getattr(target, "tree", None)
    if isinstance(tree, AndXorTree):
        return QuerySession(tree), "local"
    raise PlanningError(
        "cannot connect to a target of type "
        f"{type(target).__name__}; expected a database, tree, statistics, "
        "(sharded) session, sharded database or serving executor"
    )


def _layout_kind(session: QuerySession) -> str:
    """``tuple-independent`` / ``bid`` / ``general`` layout of a session."""
    probe = getattr(session, "layout_kind", None)
    if callable(probe):
        return probe()
    return layout_of_tree(session.tree)


def layout_of_tree(tree: AndXorTree) -> str:
    """Classify a tree as tuple-independent, BID, or general and/xor.

    Purely structural (matching the shapes the builders produce), so it
    never needs scores or rank statistics: an and root of single-leaf xor
    children is tuple-independent, an and root whose xor children hold
    multiple same-key leaves is BID, anything else is general.
    """
    root = tree.root
    if not isinstance(root, AndNode):
        return "general"
    layout = "tuple-independent"
    for child in root.children():
        if isinstance(child, Leaf):
            continue
        if isinstance(child, XorNode):
            grandchildren = child.children()
            if not all(
                isinstance(grandchild, Leaf) for grandchild in grandchildren
            ):
                return "general"
            keys = {leaf.alternative.key for leaf in grandchildren}
            if len(keys) > 1:
                return "general"
            if len(grandchildren) > 1:
                layout = "bid"
            continue
        return "general"
    return layout


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
class Planner:
    """Hardness-aware, calibration-aware execution planner.

    Parameters
    ----------
    kendall_exact_limit:
        Databases with at most this many tuples answer NP-hard Kendall
        queries exactly (exhaustive enumeration); larger databases fall
        back to the Monte-Carlo route -- the paper's size threshold between
        "enumerate" and "estimate".  ``None`` (the default) derives the
        threshold from measured kernel rates: the calibration table's
        enumeration cost against its sampling cost (see
        :func:`~repro.query.calibration.kendall_crossover`), clamped to
        ``[5, 16]``; an explicit integer always wins.
    default_samples:
        Monte-Carlo samples drawn when the query sets no epsilon or cap.
    max_samples:
        Sample ceiling for CI-driven sizing (epsilon set, no explicit cap).
    batch_size:
        Samples per backend kernel call during CI-driven estimation.
        ``None`` sizes batches from the calibrated per-sample cost
        (:func:`~repro.query.calibration.derive_batch_size`); the explicit
        default keeps seeded RNG streams stable across hosts.
    calibration:
        An explicit :class:`~repro.query.calibration.CalibrationTable`.
        When omitted the planner lazily loads the host's persisted table
        (``REPRO_CALIBRATION`` / ``benchmarks/results/calibration.json``)
        at the first calibrated decision, running the micro-probes as a
        fallback when ``micro_calibrate`` is true.
    micro_calibrate:
        Whether to time the first-use micro-probes when no persisted
        calibration matches this host.  Disable to force pure heuristics.
    """

    #: Bounds on the auto-resolved Kendall enumeration threshold: always
    #: enumerate single-digit databases, never cross the exponential wall.
    KENDALL_LIMIT_FLOOR = 5
    KENDALL_LIMIT_CEILING = 16
    #: The heuristic threshold used when no calibration is available.
    KENDALL_LIMIT_DEFAULT = 6
    #: The heuristic Monte-Carlo batch size (samples per kernel call).
    BATCH_SIZE_DEFAULT = 2048

    def __init__(
        self,
        kendall_exact_limit: Optional[int] = None,
        default_samples: int = 4000,
        max_samples: int = 100_000,
        batch_size: Optional[int] = BATCH_SIZE_DEFAULT,
        calibration: Any = None,
        micro_calibrate: bool = True,
    ) -> None:
        self._explicit_kendall_limit = kendall_exact_limit
        self.default_samples = default_samples
        self.max_samples = max_samples
        self.batch_size = batch_size
        self._calibration = calibration
        self._calibration_resolved = calibration is not None
        self._micro_calibrate = micro_calibrate
        # Backends already micro-probed (or found covered) so a backend
        # switch tops the table up at most once per backend.
        self._probed_backends: set = set()
        # Per-backend resolved decisions: (limit, note-or-None).
        self._kendall_limits: Dict[str, Tuple[int, Optional[str]]] = {}

    # ------------------------------------------------------------------
    # Calibration resolution
    # ------------------------------------------------------------------
    def calibration_table(self) -> Any:
        """The planner's calibration table, resolved lazily at first use.

        Load order: an explicitly passed table, the host's persisted table
        (environment override / ``benchmarks/results/calibration.json``),
        then the micro-probes.  A table that lacks rates for the *active*
        backend (e.g. a numpy-fitted file consulted from the pure backend)
        is topped up with micro-probes for that backend, at most once per
        backend.  Resolution failure degrades to None and every decision
        falls back to the heuristic constants.
        """
        if not self._calibration_resolved:
            self._calibration_resolved = True
            from repro.query.calibration import load_calibration

            self._calibration = load_calibration()
        if self._micro_calibrate:
            from repro.engine import get_backend

            backend = get_backend().name
            if backend not in self._probed_backends:
                self._probed_backends.add(backend)
                if self._calibration is None or not (
                    self._calibration.has_backend(backend)
                ):
                    from repro.query.calibration import (
                        micro_calibrate as run_probes,
                    )

                    try:
                        probes = run_probes()
                    except Exception:
                        probes = None
                    if probes is not None:
                        if self._calibration is None:
                            self._calibration = probes
                        else:
                            self._calibration.merge(probes)
        return self._calibration

    @property
    def kendall_exact_limit(self) -> int:
        """The exact-vs-sampling crossover for NP-hard Kendall queries.

        Explicit construction values pass through untouched; in auto mode
        the measured crossover for the active backend is used (resolved
        once per backend), clamped to
        ``[KENDALL_LIMIT_FLOOR, KENDALL_LIMIT_CEILING]``.
        """
        return self._kendall_decision()[0]

    @property
    def kendall_limit_note(self) -> Optional[str]:
        """Human-readable provenance of the Kendall threshold (None when
        the heuristic default is in effect)."""
        return self._kendall_decision()[1]

    def _kendall_decision(self) -> Tuple[int, Optional[str]]:
        if self._explicit_kendall_limit is not None:
            return self._explicit_kendall_limit, None
        from repro.engine import get_backend

        backend = get_backend().name
        resolved = self._kendall_limits.get(backend)
        if resolved is None:
            resolved = (self.KENDALL_LIMIT_DEFAULT, None)
            table = self.calibration_table()
            if table is not None:
                from repro.query.calibration import kendall_crossover

                limit, note = kendall_crossover(
                    table,
                    backend,
                    "tuple-independent",
                    samples=self.default_samples,
                    fallback=self.KENDALL_LIMIT_DEFAULT,
                    floor=self.KENDALL_LIMIT_FLOOR,
                    ceiling=self.KENDALL_LIMIT_CEILING,
                )
                resolved = (limit, note)
            self._kendall_limits[backend] = resolved
        return resolved

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def plan_for(
        self,
        query: ConsensusQuery,
        session: QuerySession,
        deployment: Optional[str] = None,
    ) -> ExecutionPlan:
        """The (memoized) execution plan for one query on one session.

        Plans are cached on the session keyed by the query's stable hash
        and dropped when the session's generation changes, so repeated
        dispatch costs one dictionary lookup.
        """
        if deployment is None:
            deployment = session.deployment
        cache: Dict[Any, ExecutionPlan] = session.__dict__.setdefault(
            "_query_plan_cache", {}
        )
        # The planner itself is part of the key: differently configured
        # planners (thresholds, sample budgets) must not serve each
        # other's routes off a shared session.
        key = (query, deployment, self)
        plan = cache.get(key)
        if plan is not None:
            # Routes depend only on the query, the target's structure
            # (size/layout/sharding -- invariant under updates and cache
            # invalidation) and the active backend; re-plan only when the
            # backend switched.
            from repro.engine import get_backend

            if plan.profile.backend == get_backend().name:
                return plan
        if len(cache) > 512:
            cache.clear()
        plan = self._build_plan(query, session, deployment)
        cache[key] = plan
        return plan

    def run(
        self,
        query: ConsensusQuery,
        session: QuerySession,
        rng: Any = None,
    ) -> Any:
        """Plan (cached) and run, returning the raw legacy-shaped value."""
        return self.plan_for(query, session).run(rng)

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def profile(
        self, session: QuerySession, deployment: str
    ) -> TargetProfile:
        """Inspect the target: deployment, layout, size, backend.

        Layout and size are structural (updates and invalidations never
        change them), so they are probed once per session and cached;
        only the backend name is re-read per plan build.
        """
        from repro.engine import get_backend

        probed = session.__dict__.get("_query_target_probe")
        if probed is None:
            try:
                n = session.number_of_tuples()
            except TypeError:
                # Trees without numeric scores (set-level consensus only)
                # cannot build rank statistics; count keys structurally.
                n = len(session.tree.keys())
            probed = (_layout_kind(session), n)
            session.__dict__["_query_target_probe"] = probed
        layout, n = probed
        return TargetProfile(
            deployment=deployment,
            layout=layout,
            n=n,
            shard_count=getattr(session, "shard_count", 1),
            backend=get_backend().name,
        )

    # ------------------------------------------------------------------
    # Route selection
    # ------------------------------------------------------------------
    def _build_plan(
        self,
        query: ConsensusQuery,
        session: QuerySession,
        deployment: str,
    ) -> ExecutionPlan:
        profile = self.profile(session, deployment)
        hardness = hardness_of(query)
        builder = {
            "topk": self._plan_topk,
            "world": self._plan_world,
            "membership": self._plan_membership,
            "expected_ranks": self._plan_expected_ranks,
            "ranking": self._plan_ranking,
            "aggregate": self._plan_aggregate,
        }[query.family]
        route, algorithm, cost, cost_note, kernel, artifacts, paired, runner = (
            builder(query, profile)
        )
        cost_seconds: Optional[float] = None
        cost_source = "heuristic"
        table = self.calibration_table()
        if table is not None and kernel is not None:
            seconds = table.seconds_for(
                profile.backend, profile.layout, kernel, profile.n, cost
            )
            if seconds is not None:
                cost_seconds = seconds
                cost_source = (
                    "calibrated"
                    if table.source == "measured"
                    else "micro-calibrated"
                )
        return ExecutionPlan(
            query=query,
            session=session,
            route=route,
            algorithm=algorithm,
            hardness=hardness,
            profile=profile,
            estimated_cost=cost,
            cost_note=cost_note,
            artifacts=artifacts,
            paired=paired,
            runner=runner,
            cost_seconds=cost_seconds,
            cost_source=cost_source,
        )

    def _plan_topk(self, query: ConsensusQuery, profile: TargetProfile):
        k = query.k
        n = profile.n
        metric = query.metric
        if metric == "kendall":
            return self._plan_topk_kendall(query, profile)
        if query.mode == "sample":
            return self._sample_route(query, profile, self._exact_topk_answer)
        if metric == "symmetric_difference":
            if query.statistic == "median":
                return (
                    "exact",
                    "median_topk_symmetric_difference (Theorem 4 size-table "
                    "merge)",
                    float(n) * k + float(n) ** 2,
                    "rank sweep n*k + per-size best-world tables n^2",
                    "size_tables",
                    (
                        ("query:median_topk_symmetric_difference", (k,)),
                    ),
                    True,
                    lambda session, rng: ExecutionResult(
                        session.median_topk_symmetric_difference(k)
                    ),
                )
            return (
                "exact",
                "mean_topk_symmetric_difference (Theorem 3 rank-matrix "
                "kernel)",
                float(n) * k,
                "one truncated rank-matrix sweep (n x k)",
                "rank_sweep",
                (
                    ("rank_matrix", (k,)),
                    ("query:mean_topk_symmetric_difference", (k,)),
                ),
                True,
                lambda session, rng: ExecutionResult(
                    session.mean_topk_symmetric_difference(k)
                ),
            )
        if metric == "footrule":
            return (
                "exact",
                "mean_topk_footrule (Section 5.4 min-cost assignment over "
                "the Upsilon tables)",
                float(n) * k + float(k) ** 3,
                "footrule cost matrix n*k + assignment k^3",
                "footrule_assignment",
                (
                    ("footrule_statistics", (k,)),
                    ("query:mean_topk_footrule", (k,)),
                ),
                True,
                lambda session, rng: ExecutionResult(
                    session.mean_topk_footrule(k)
                ),
            )
        # intersection
        if query.mode == "approximate":
            return (
                "approximate",
                "approximate_topk_intersection (H_k-factor greedy)",
                float(n) * k,
                "rank sweep n*k + greedy selection",
                "rank_sweep",
                (
                    ("rank_matrix", (k,)),
                    ("query:approximate_topk_intersection", (k,)),
                ),
                True,
                lambda session, rng: ExecutionResult(
                    session.approximate_topk_intersection(k)
                ),
            )
        return (
            "exact",
            "mean_topk_intersection (Section 5.3 exact kernel)",
            float(n) * k,
            "one truncated rank-matrix sweep (n x k)",
            "rank_sweep",
            (
                ("rank_matrix", (k,)),
                ("query:mean_topk_intersection", (k,)),
            ),
            True,
            lambda session, rng: ExecutionResult(
                session.mean_topk_intersection(k)
            ),
        )

    def _plan_topk_kendall(
        self, query: ConsensusQuery, profile: TargetProfile
    ):
        k = query.k
        n = profile.n
        pool = query.param("candidate_pool_size")
        pool_size = pool if pool is not None else min(2 * k, n)

        def pivot(session: QuerySession, rng: Any) -> Tuple:
            return session.approximate_topk_kendall(
                k, candidate_pool_size=pool, rng=rng
            )

        mode = query.mode
        if mode == "auto":
            mode = (
                "exact" if n <= self.kendall_exact_limit else "sample"
            )
        if mode == "exact":
            cost = min(float(n) ** k * 2.0 ** n, 1e300)
            threshold = (
                "feasible only below the size threshold of "
                f"{self.kendall_exact_limit} tuples"
            )
            note = self.kendall_limit_note
            if note is not None:
                threshold += f"; {note}"
            return (
                "exact",
                "brute_force_mean_topk_kendall (exhaustive candidate x "
                f"world enumeration; {threshold})",
                cost,
                "P(n,k) candidate answers x 2^n possible worlds",
                "kendall_enumeration",
                (),
                True,
                self._kendall_brute_force_runner(k),
            )
        if mode == "approximate":
            return (
                "approximate",
                "approximate_topk_kendall (KwikSort pivoting on the "
                "pairwise preference grid)",
                float(n) * k + float(pool_size) ** 2,
                "membership sweep n*k + pivot on a pool^2 preference grid",
                "pivot_grid",
                (
                    ("rank_matrix", (k,)),
                    ("query:approximate_topk_kendall", (k, pool)),
                ),
                False,
                lambda session, rng: ExecutionResult(pivot(session, rng)),
            )
        # sample: pivot candidate + CI-driven Monte-Carlo estimate of its
        # expected Kendall distance (the hardness fallback).
        samples = self._sample_budget(query)
        planner = self

        def runner(session: QuerySession, rng: Any) -> ExecutionResult:
            answer = tuple(pivot(session, None))
            estimate = planner._ci_estimate(
                session, answer, k, "kendall", query, rng
            )
            return ExecutionResult((answer, estimate.mean), estimate)

        return (
            "sample",
            "pivot candidate + MonteCarloSampler estimate of E[d_K] "
            "(CI-driven sample sizing)",
            float(samples) * n,
            f"<= {samples} sampled worlds x n-leaf batches",
            "mc_sample",
            (("sampler", ()),),
            True,
            runner,
        )

    def _kendall_brute_force_runner(self, k: int):
        def runner(session: QuerySession, rng: Any) -> ExecutionResult:
            from repro.consensus.topk.kendall import (
                brute_force_mean_topk_kendall,
            )

            return ExecutionResult(brute_force_mean_topk_kendall(session, k))

        return runner

    def _exact_topk_answer(self, query: ConsensusQuery):
        """The deterministic candidate-answer call for a sampled route."""
        k = query.k
        metric = query.metric
        if metric == "symmetric_difference":
            if query.statistic == "median":
                return lambda session: session.median_topk_symmetric_difference(k)[0]
            return lambda session: session.mean_topk_symmetric_difference(k)[0]
        if metric == "footrule":
            return lambda session: session.mean_topk_footrule(k)[0]
        return lambda session: session.mean_topk_intersection(k)[0]

    def _sample_route(
        self,
        query: ConsensusQuery,
        profile: TargetProfile,
        candidate_factory,
    ):
        """Sampled validation route for a PTIME metric: exact candidate
        answer + Monte-Carlo estimate of its expected distance."""
        k = query.k
        metric = query.metric
        samples = self._sample_budget(query)
        candidate = candidate_factory(query)
        planner = self

        def runner(session: QuerySession, rng: Any) -> ExecutionResult:
            answer = tuple(candidate(session))
            estimate = planner._ci_estimate(
                session, answer, k, metric, query, rng
            )
            return ExecutionResult((answer, estimate.mean), estimate)

        return (
            "sample",
            f"exact candidate + MonteCarloSampler estimate of E[d_"
            f"{metric}] (CI-driven sample sizing)",
            float(samples) * profile.n,
            f"<= {samples} sampled worlds x n-leaf batches",
            "mc_sample",
            (("sampler", ()),),
            True,
            runner,
        )

    def _plan_world(self, query: ConsensusQuery, profile: TargetProfile):
        n = profile.n
        metric = query.metric
        statistic = query.statistic
        if metric == "symmetric_difference":
            if statistic == "median":
                return (
                    "exact",
                    "median world tree DP (exact on and/xor trees)",
                    float(n),
                    "one bottom-up pass over the tree",
                    "tree_pass",
                    (("query:median_world_symmetric_difference", ()),),
                    True,
                    lambda session, rng: ExecutionResult(
                        session.median_world_symmetric_difference()
                    ),
                )
            return (
                "exact",
                "membership-probability threshold (keep Pr > 1/2, "
                "Theorem 2)",
                float(n),
                "one pass over the alternative probabilities",
                "tree_pass",
                (("query:mean_world_symmetric_difference", ()),),
                True,
                lambda session, rng: ExecutionResult(
                    session.mean_world_symmetric_difference()
                ),
            )
        # Jaccard
        if statistic == "median":
            return (
                "exact",
                "per-block representative prefix scan (Section 4.2, BID "
                "layouts)",
                float(n) ** 2,
                "n prefixes x Lemma 1 evaluation",
                "prefix_scan",
                (("query:median_world_jaccard", ()),),
                True,
                lambda session, rng: ExecutionResult(
                    session.median_world_jaccard()
                ),
            )
        return (
            "exact",
            "probability-sorted prefix scan (Lemma 2; prefix optimality "
            "guaranteed for tuple-independent layouts)",
            float(n) ** 2,
            "one O(n^2) backend prefix sweep",
            "prefix_scan",
            (("query:mean_world_jaccard", ()),),
            True,
            lambda session, rng: ExecutionResult(
                session.mean_world_jaccard()
            ),
        )

    def _plan_membership(self, query: ConsensusQuery, profile: TargetProfile):
        k = query.k
        return (
            "exact",
            "rank_matrix(k).membership() (Pr(r(t) <= k) per tuple)",
            float(profile.n) * k,
            "one truncated rank-matrix sweep (n x k)",
            "rank_sweep",
            (("rank_matrix", (k,)), ("top_k_membership", (k,))),
            False,
            lambda session, rng: ExecutionResult(
                session.top_k_membership(k)
            ),
        )

    def _plan_expected_ranks(
        self, query: ConsensusQuery, profile: TargetProfile
    ):
        return (
            "exact",
            "expected_rank_table (Cormode-style expected ranks)",
            float(profile.n) ** 2,
            "n^2 general / n log n tuple-independent",
            "prefix_scan",
            (("expected_rank_table", ()),),
            False,
            lambda session, rng: ExecutionResult(
                session.expected_rank_table()
            ),
        )

    def _plan_ranking(self, query: ConsensusQuery, profile: TargetProfile):
        k = query.k
        if query.semantics == "global":
            return (
                "exact",
                "global_topk baseline (score order)",
                float(profile.n) * k,
                "score sort + prefix",
                "rank_sweep",
                (("query:global_topk", (k,)),),
                False,
                lambda session, rng: ExecutionResult(session.global_topk(k)),
            )
        return (
            "exact",
            "expected_rank_topk baseline",
            float(profile.n) ** 2,
            "expected-rank table + prefix",
            "prefix_scan",
            (
                ("expected_rank_table", ()),
                ("query:expected_rank_topk", (k,)),
            ),
            False,
            lambda session, rng: ExecutionResult(
                session.expected_rank_topk(k)
            ),
        )

    def _plan_aggregate(self, query: ConsensusQuery, profile: TargetProfile):
        median = query.statistic == "median"

        def runner(session: QuerySession, rng: Any) -> ExecutionResult:
            from repro.consensus.aggregates import GroupByCountConsensus

            consensus = GroupByCountConsensus.from_bid_tree(session.tree)
            if median:
                return ExecutionResult(
                    consensus.median_answer_approximation()
                )
            return ExecutionResult(tuple(consensus.mean_answer()))

        if median:
            return (
                "approximate",
                "GroupByCountConsensus.median_answer_approximation "
                "(min-cost-flow rounding)",
                float(profile.n) ** 2,
                "expected counts + min-cost flow over n tuples x m groups",
                "prefix_scan",
                (),
                True,
                runner,
            )
        return (
            "exact",
            "GroupByCountConsensus.mean_answer (expected counts)",
            float(profile.n),
            "one pass over the group probabilities",
            "tree_pass",
            (),
            False,
            runner,
        )

    # ------------------------------------------------------------------
    # Fused multi-query plans
    # ------------------------------------------------------------------
    def fuse_plans(self, session: QuerySession, plans) -> int:
        """Seed one artifact sweep for a batch of rank-matrix plans.

        Plans in a micro-batch that consult the ``rank_matrix`` artifact
        at different ``k`` are all answered from *one* backend sweep at
        ``k_max``: ``Pr(r(t) = i)`` does not depend on the truncation
        bound, so :meth:`~repro.engine.RankMatrix.truncated` column-prefix
        slices are exactly identical to per-``k`` recomputation.  The
        sweep is materialized, the smaller-``k`` entries are seeded into
        the session's artifact cache as slices, and every plan in the
        group then dispatches against a warm artifact.

        Returns the number of plans answered from the fused sweep (0 when
        fewer than two distinct ``k`` values want the artifact).
        """
        wanted: Dict[int, int] = {}
        for plan in plans:
            if plan is None:
                continue
            for name, params in plan.artifacts:
                if name == "rank_matrix" and params:
                    k = params[0]
                    wanted[k] = wanted.get(k, 0) + 1
                    break
        if len(wanted) < 2:
            return 0
        ks = sorted(wanted)
        k_max = ks[-1]
        # One sweep at k_max (this also syncs sharded coordinators so the
        # seeds below land in the current version's artifact store).
        base = session.rank_matrix(k_max)
        cache = getattr(session, "_cache", None)
        if cache is None:
            return 0
        for k in ks[:-1]:
            key = ("rank_matrix", (k,))
            if key not in cache:
                cache[key] = base.truncated(k)
        return sum(wanted.values())

    # ------------------------------------------------------------------
    # Monte-Carlo machinery
    # ------------------------------------------------------------------
    def _resolved_batch_size(self, session: QuerySession) -> int:
        """The Monte-Carlo batch size: explicit, or calibrated when the
        planner was built with ``batch_size=None``."""
        if self.batch_size is not None:
            return self.batch_size
        table = self.calibration_table()
        if table is not None:
            from repro.engine import get_backend
            from repro.query.calibration import derive_batch_size

            try:
                n = session.number_of_tuples()
            except TypeError:
                n = len(session.tree.keys())
            return derive_batch_size(
                table,
                get_backend().name,
                _layout_kind(session),
                n,
                fallback=self.BATCH_SIZE_DEFAULT,
            )
        return self.BATCH_SIZE_DEFAULT

    def _sample_budget(self, query: ConsensusQuery) -> int:
        if query.sample_cap is not None:
            return query.sample_cap
        if query.target_epsilon is not None:
            return self.max_samples
        return self.default_samples

    def _ci_estimate(
        self,
        session: QuerySession,
        answer: Tuple,
        k: int,
        metric: str,
        query: ConsensusQuery,
        rng: Any,
    ) -> Any:
        """Estimate ``E[d(answer, tau_pw)]``, sizing samples by the CI.

        Draws batches through the session's memoized
        :class:`~repro.engine.MonteCarloSampler` until the
        normal-approximation confidence interval's half-width drops below
        the query's epsilon (when set) or the sample budget is exhausted.
        """
        from repro.engine.sampling import StreamingMoments, resolve_rng

        sampler = session.sampler()
        generator = resolve_rng(rng)
        moments = StreamingMoments()
        epsilon = query.target_epsilon
        cap = self._sample_budget(query)
        batch = min(self._resolved_batch_size(session), cap)
        drawn = 0
        while drawn < cap:
            count = min(batch, cap - drawn)
            world_batch = sampler.sample_batch(count, rng=generator)
            moments.add_many(world_batch.topk_distances(answer, k, metric))
            drawn += count
            if epsilon is not None:
                estimate = moments.estimate()
                low, high = estimate.confidence_interval(
                    query.confidence_level
                )
                if (high - low) / 2.0 <= epsilon:
                    break
        return moments.estimate()


#: The process-wide planner instance the convenience APIs use.
DEFAULT_PLANNER = Planner()
