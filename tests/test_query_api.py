"""The declarative query API: builder, planner routing, and parity.

Three promises, all exercised here:

* **Parity** -- every query expressible through the new API returns
  1e-9-identical answers to the legacy call path, on both array backends,
  against a local session and a 4-shard sharded database.
* **Planner routing** -- PTIME distances get exact kernels, NP-hard
  distances get Monte-Carlo above the size threshold (exhaustive
  enumeration below it), and ``explain()`` names the paper result behind
  each choice.
* **Facade** -- ``connect()`` resolves every deployment (local, sharded,
  served) to one Connection type with identical answers.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from tests.conftest import small_bid, small_tuple_independent
from repro.consensus.jaccard import (
    mean_world_jaccard_tuple_independent,
    median_world_jaccard_bid,
)
from repro.consensus.set_consensus import (
    mean_world_symmetric_difference,
    median_world_symmetric_difference,
)
from repro.consensus.topk.kendall import (
    brute_force_mean_topk_kendall,
    expected_topk_kendall_distance,
)
from repro.engine import numpy_available, use_backend
from repro.exceptions import ConsensusError, PlanningError
from repro.models import ShardedDatabase
from repro.query import (
    DEFAULT_PLANNER,
    LEGACY_KINDS,
    Connection,
    ConsensusQuery,
    Planner,
    Query,
    connect,
    hardness_of,
    query_for_kind,
    required_max_rank,
    resolve_session,
)
from repro.serving import QueryRequest, ServingExecutor
from repro.session import QuerySession
from repro.workloads.generators import random_tuple_independent_database

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

K = 4
SHARDS = 4


def _close(a, b, tolerance=1e-9):
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            _close(x, y, tolerance) for x, y in zip(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(
            _close(a[key], b[key], tolerance) for key in a
        )
    if isinstance(a, float) and isinstance(b, float):
        return math.isclose(a, b, abs_tol=tolerance)
    return a == b


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class TestBuilder:
    def test_chaining_returns_new_immutable_queries(self):
        base = Query.topk(k=10)
        refined = base.distance("kendall").epsilon(0.01).confidence(0.9)
        assert base.metric == "symmetric_difference"
        assert base.target_epsilon is None
        assert refined.metric == "kendall"
        assert refined.target_epsilon == 0.01
        assert refined.confidence_level == 0.9
        assert refined.k == 10

    def test_equality_and_hash_stability(self):
        first = Query.topk(k=5).distance("footrule")
        second = Query.topk(k=5).distance("footrule")
        assert first == second
        assert hash(first) == hash(second)
        assert first.fingerprint() == second.fingerprint()
        assert first != first.with_k(6)
        assert first.fingerprint() != first.with_k(6).fingerprint()

    def test_params_are_canonically_sorted(self):
        first = Query.topk(k=3, distance="kendall").with_params(b=1, a=2)
        second = Query.topk(k=3, distance="kendall").with_params(a=2, b=1)
        assert first == second
        assert first.param("a") == 2
        assert first.param("missing", 7) == 7

    def test_validation_errors(self):
        with pytest.raises(ConsensusError):
            Query.topk(k=0)
        with pytest.raises(ConsensusError):
            Query.topk(k=3, distance="hamming")
        with pytest.raises(ConsensusError):
            Query.topk(k=3, distance="footrule").median()
        with pytest.raises(ConsensusError):
            Query.topk(k=3, distance="footrule").approximate()
        with pytest.raises(ConsensusError):
            Query.world("kendall")
        with pytest.raises(ConsensusError):
            Query.ranking("borda", 3)
        with pytest.raises(ConsensusError):
            Query.membership(3).epsilon(0.1)
        with pytest.raises(ConsensusError):
            Query.topk(k=3).epsilon(-1.0)
        with pytest.raises(ConsensusError):
            Query.topk(k=3).confidence(1.5)
        with pytest.raises(ConsensusError):
            Query.topk(k=3).sampled(0)

    def test_kind_round_trips_every_legacy_kind(self):
        for kind in LEGACY_KINDS:
            query = query_for_kind(kind, K)
            assert query.kind == kind, kind

    def test_pickle_round_trip_preserves_hash_eq_contract(self):
        import pickle

        query = Query.topk(k=5).distance("kendall").with_params(a=1)
        hash(query)  # populate the in-process hash memo
        clone = pickle.loads(pickle.dumps(query))
        assert clone == query
        assert hash(clone) == hash(query)
        # The memo must not travel: a fresh process would have a different
        # string-hash salt, so the cache has to be dropped on pickling.
        assert "_hash_cache" not in pickle.loads(
            pickle.dumps(query)
        ).__dict__ or hash(clone) == hash(query)
        state = query.__getstate__()
        assert "_hash_cache" not in state

    def test_from_query_refuses_lossy_wire_conversions(self):
        # Monte-Carlo sizing has no legacy wire form: refusing beats
        # silently answering an exact query instead of a CI-driven one.
        with pytest.raises(ConsensusError):
            QueryRequest.from_query(Query.topk(k=2).epsilon(0.05))
        with pytest.raises(ConsensusError):
            QueryRequest.from_query(Query.topk(k=2).sampled(100))
        with pytest.raises(ConsensusError):
            QueryRequest.from_query(Query.topk(k=2).distance("kendall"))
        wire = QueryRequest.from_query(
            Query.topk(k=2).distance("kendall").approximate()
        )
        assert wire.to_query() == Query.topk(k=2).distance("kendall").approximate()

    def test_query_for_kind_errors_match_legacy_dispatch(self):
        with pytest.raises(ConsensusError):
            query_for_kind("no_such_kind", 3)
        with pytest.raises(ConsensusError):
            query_for_kind("mean_topk_footrule", None)
        # expected_rank_table never needed k on the wire, but keeps one
        # when given (legacy streams carried the drawn k in the request).
        assert query_for_kind("expected_rank_table").family == "expected_ranks"
        carried = query_for_kind("expected_rank_table", 5)
        assert carried.k == 5
        assert QueryRequest.from_query(carried) == QueryRequest.make(
            "expected_rank_table", 5
        )

    def test_required_max_rank(self):
        assert required_max_rank(query_for_kind("mean_topk_footrule", 5)) == 5
        assert required_max_rank(query_for_kind("expected_rank_table")) is None
        assert required_max_rank(query_for_kind("expected_rank_topk", 5)) is None
        assert required_max_rank(Query.set_consensus()) is None


# ----------------------------------------------------------------------
# Parity: new API vs legacy call path
# ----------------------------------------------------------------------
def _legacy_answer(session: QuerySession, kind: str, k: int):
    """The pre-declarative call path for one kind."""
    method = {
        "mean_topk_symmetric_difference":
            lambda: session.mean_topk_symmetric_difference(k),
        "median_topk_symmetric_difference":
            lambda: session.median_topk_symmetric_difference(k),
        "mean_topk_footrule": lambda: session.mean_topk_footrule(k),
        "mean_topk_intersection": lambda: session.mean_topk_intersection(k),
        "approximate_topk_intersection":
            lambda: session.approximate_topk_intersection(k),
        "approximate_topk_kendall":
            lambda: session.approximate_topk_kendall(k),
        "top_k_membership": lambda: session.top_k_membership(k),
        "expected_rank_table": lambda: session.expected_rank_table(),
        "global_topk": lambda: session.global_topk(k),
        "expected_rank_topk": lambda: session.expected_rank_topk(k),
    }[kind]
    return method()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kind", LEGACY_KINDS)
def test_new_api_matches_legacy_local_and_sharded(backend, kind):
    database = random_tuple_independent_database(16, rng=97)
    with use_backend(backend):
        oracle = QuerySession(database.tree)
        expected = _legacy_answer(oracle, kind, K)
        query = query_for_kind(kind, K)
        # Local: fresh session through the facade.
        local = connect(database.tree).execute(query)
        assert _close(local.value, expected), f"{kind} local/{backend}"
        # Sharded: 4-shard coordinator through the same facade.
        sharded = connect(ShardedDatabase(database, SHARDS)).execute(query)
        assert _close(sharded.value, expected), f"{kind} sharded/{backend}"
        assert sharded.deployment == "sharded"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [1, 2])
def test_world_query_parity(backend, seed):
    ti = small_tuple_independent(seed, count=6)
    bid = small_bid(seed, blocks=4)
    with use_backend(backend):
        conn = connect(ti.tree)
        assert conn.execute(Query.set_consensus()).value == (
            mean_world_symmetric_difference(ti.tree)
        )
        assert conn.execute(Query.set_consensus("median")).value == (
            median_world_symmetric_difference(ti.tree)
        )
        assert conn.execute(Query.jaccard()).value == (
            mean_world_jaccard_tuple_independent(ti.tree)
        )
        bid_conn = connect(bid.tree)
        assert bid_conn.execute(Query.jaccard("median")).value == (
            median_world_jaccard_bid(bid.tree)
        )


def test_aggregate_query_parity():
    from repro.andxor.builders import bid_tree
    from repro.consensus.aggregates import GroupByCountConsensus

    tree = bid_tree(
        [
            ("t1", [("tools", 0.7), ("toys", 0.3)]),
            ("t2", [("tools", 0.2), ("toys", 0.8)]),
            ("t3", [("toys", 1.0)]),
        ]
    )
    reference = GroupByCountConsensus.from_bid_tree(tree)
    conn = connect(tree)
    mean = conn.execute(Query.aggregate())
    assert mean.value == tuple(reference.mean_answer())
    median = conn.execute(Query.aggregate("median"))
    assert median.value == reference.median_answer_approximation()
    assert median.plan.route == "approximate"


def test_deprecated_shims_return_identical_answers():
    import repro

    database = small_tuple_independent(3, count=6)
    session = QuerySession(database.tree)
    with pytest.warns(DeprecationWarning):
        legacy = repro.mean_topk_footrule(database.tree, 3)
    assert legacy == session.mean_topk_footrule(3)
    with pytest.warns(DeprecationWarning):
        legacy_world = repro.mean_world_symmetric_difference(database.tree)
    assert legacy_world == mean_world_symmetric_difference(database.tree)
    with pytest.warns(DeprecationWarning):
        kendall = repro.approximate_topk_kendall(database.tree, 3)
    assert kendall == session.approximate_topk_kendall(3)


# ----------------------------------------------------------------------
# Planner routing
# ----------------------------------------------------------------------
class TestPlannerRouting:
    def test_ptime_distances_get_exact_kernels(self):
        database = random_tuple_independent_database(20, rng=5)
        conn = connect(database)
        for distance in ("symmetric_difference", "footrule", "intersection"):
            plan = conn.plan(Query.topk(k=K).distance(distance))
            assert plan.route == "exact", distance
            assert plan.hardness.complexity == "ptime"

    def test_kendall_auto_is_monte_carlo_above_threshold(self):
        database = random_tuple_independent_database(20, rng=5)
        plan = connect(database).plan(Query.topk(k=K).distance("kendall"))
        assert plan.route == "sample"
        assert plan.hardness.complexity == "np-hard"
        assert "MonteCarlo" in plan.algorithm

    def test_kendall_auto_is_exact_below_threshold(self):
        database = small_tuple_independent(7, count=5)
        conn = connect(database.tree)
        plan = conn.plan(Query.topk(k=2).distance("kendall"))
        assert plan.route == "exact"
        # ... and the enumeration really is the optimum.
        answer = conn.execute(Query.topk(k=2).distance("kendall"))
        expected = brute_force_mean_topk_kendall(
            QuerySession(database.tree), 2
        )
        assert answer.value[0] == expected[0]
        assert math.isclose(answer.value[1], expected[1], abs_tol=1e-9)

    def test_threshold_is_configurable(self):
        database = small_tuple_independent(7, count=5)
        planner = Planner(kendall_exact_limit=2)
        session = QuerySession(database.tree)
        plan = planner.plan_for(Query.topk(k=2).distance("kendall"), session)
        assert plan.route == "sample"

    def test_plan_cache_is_per_planner_instance(self):
        # Differently-configured planners sharing a session must not
        # serve each other's routes out of the session-local plan cache.
        database = random_tuple_independent_database(20, rng=5)
        session = QuerySession(database.tree)
        query = Query.topk(k=3).distance("kendall")
        exact_everywhere = Planner(kendall_exact_limit=100)
        assert exact_everywhere.plan_for(query, session).route == "exact"
        assert DEFAULT_PLANNER.plan_for(query, session).route == "sample"
        assert exact_everywhere.plan_for(query, session).route == "exact"

    def test_explain_names_the_paper_result(self):
        database = random_tuple_independent_database(20, rng=5)
        conn = connect(database, shards=SHARDS)
        ptime = conn.explain(Query.topk(k=K).distance("footrule"))
        assert "PTIME" in ptime and "Section 5.4" in ptime
        assert "route:     exact" in ptime
        assert "sharded" in ptime
        hard = conn.explain(Query.topk(k=K).distance("kendall"))
        assert "NP-hard" in hard and "Section 5.5" in hard
        assert "route:     sample" in hard
        mean_world = conn.explain(Query.set_consensus())
        assert "Theorem 2" in mean_world

    def test_explain_reports_artifact_reuse(self):
        database = random_tuple_independent_database(12, rng=5)
        conn = connect(database)
        query = Query.topk(k=K)
        assert "[cold]" in conn.explain(query)
        conn.execute(query)
        assert "[warm]" in conn.explain(query)

    def test_plans_are_memoized_and_survive_invalidation(self):
        database = random_tuple_independent_database(12, rng=5)
        conn = connect(database)
        query = Query.topk(k=K)
        first = conn.plan(query)
        assert conn.plan(query) is first
        # Invalidation drops artifacts, not plans: routes depend only on
        # the query and the target's structure.
        conn.session.invalidate()
        assert conn.plan(query) is first
        answer = conn.execute(query)
        assert answer.cache_misses > 0  # recomputed, not served stale

    def test_plans_rebuild_when_the_backend_switches(self):
        database = random_tuple_independent_database(12, rng=5)
        conn = connect(database)
        query = Query.topk(k=K)
        with use_backend("python"):
            first = conn.plan(query)
            assert first.profile.backend == "python"
            assert conn.plan(query) is first
        if numpy_available():
            with use_backend("numpy"):
                second = conn.plan(query)
                assert second is not first
                assert second.profile.backend == "numpy"

    def test_hardness_map_covers_every_legacy_kind(self):
        for kind in LEGACY_KINDS:
            entry = hardness_of(query_for_kind(kind, K))
            assert entry.paper
            assert entry.complexity in ("ptime", "np-hard", "approximation")

    def test_answer_provenance_and_timing(self):
        database = random_tuple_independent_database(12, rng=5)
        answer = connect(database).execute(Query.topk(k=K))
        assert answer.elapsed >= 0.0
        assert answer.cache_misses > 0
        provenance = answer.provenance()
        assert provenance["paper"] == "Theorem 3"
        assert provenance["deployment"] == "local"
        assert answer.kind == "mean_topk_symmetric_difference"


# ----------------------------------------------------------------------
# Monte-Carlo routes
# ----------------------------------------------------------------------
class TestSampledRoutes:
    def test_kendall_sample_answer_matches_pivot_and_estimates_distance(self):
        database = random_tuple_independent_database(14, rng=11)
        session = QuerySession(database.tree)
        answer = connect(database.tree).execute(
            Query.topk(k=3).distance("kendall").sampled(4000), rng=7
        )
        assert answer.value[0] == session.approximate_topk_kendall(3)
        assert answer.estimate is not None
        assert answer.estimate.samples == 4000
        exact = expected_topk_kendall_distance(
            session, answer.value[0], 3, method="enumerate"
        )
        low, high = answer.estimate.confidence_interval(0.999)
        assert low - 0.5 <= exact <= high + 0.5

    def test_epsilon_drives_sample_size(self):
        database = random_tuple_independent_database(14, rng=11)
        conn = connect(database.tree)
        loose = conn.execute(
            Query.topk(k=3).distance("kendall").epsilon(0.25), rng=3
        )
        tight = conn.execute(
            Query.topk(k=3).distance("kendall").epsilon(0.05), rng=3
        )
        assert tight.estimate.samples >= loose.estimate.samples
        low, high = tight.estimate.confidence_interval(0.95)
        assert (high - low) / 2.0 <= 0.05 + 1e-9

    def test_ptime_metric_sampled_mode_validates_exact_answer(self):
        database = random_tuple_independent_database(14, rng=11)
        session = QuerySession(database.tree)
        exact_answer, exact_value = session.mean_topk_footrule(3)
        answer = connect(database.tree).execute(
            Query.topk(k=3).distance("footrule").sampled(8000), rng=5
        )
        assert answer.value[0] == exact_answer
        low, high = answer.estimate.confidence_interval(0.999)
        assert low - 0.5 <= exact_value <= high + 0.5

    def test_reproducible_with_seed(self):
        database = random_tuple_independent_database(14, rng=11)
        conn = connect(database.tree)
        query = Query.topk(k=3).distance("kendall").sampled(2000)
        first = conn.execute(query, rng=42)
        second = conn.execute(query, rng=42)
        assert first.value == second.value


# ----------------------------------------------------------------------
# The connect() facade
# ----------------------------------------------------------------------
class TestConnect:
    def test_connect_resolves_every_target_type(self):
        database = random_tuple_independent_database(12, rng=8)
        session = QuerySession(database.tree)
        sharded = ShardedDatabase(database, SHARDS)
        for target, deployment in (
            (database, "local"),
            (database.tree, "local"),
            (database.rank_statistics(), "local"),
            (session, "local"),
            (sharded, "sharded"),
            (sharded.coordinator(), "sharded"),
        ):
            conn = connect(target)
            assert isinstance(conn, Connection)
            assert conn.deployment == deployment, type(target).__name__
            assert len(conn) == 12

    def test_connect_is_idempotent_on_connections(self):
        database = random_tuple_independent_database(12, rng=8)
        conn = connect(database)
        assert connect(conn) is conn
        assert connect(conn, planner=conn.planner) is conn
        # A different planner rebinds (shared warm session, new routing).
        custom = Planner(kendall_exact_limit=100)
        rebound = connect(conn, planner=custom)
        assert rebound is not conn
        assert rebound.session is conn.session
        assert rebound.planner is custom

    def test_connect_shards_a_local_database(self):
        database = random_tuple_independent_database(12, rng=8)
        conn = connect(database, shards=SHARDS)
        assert conn.deployment == "sharded"
        assert conn.session.shard_count > 1
        expected = QuerySession(database.tree).mean_topk_footrule(K)
        assert _close(conn.execute(Query.topk(k=K).distance("footrule")).value,
                      expected)

    def test_connect_rejects_unknown_targets(self):
        with pytest.raises(PlanningError):
            connect(object())
        with pytest.raises(PlanningError):
            connect(random_tuple_independent_database(4, rng=1), shards=0)

    def test_connect_rejects_resharding_through_a_connection(self):
        database = random_tuple_independent_database(8, rng=1)
        conn = connect(database)
        with pytest.raises(PlanningError):
            connect(conn, shards=2)
        sharded = ShardedDatabase(database, 2)
        with pytest.raises(PlanningError):
            connect(sharded, shards=4)

    def test_connection_reuses_the_database_session(self):
        database = random_tuple_independent_database(12, rng=8)
        first = connect(database)
        second = connect(database)
        assert first.session is second.session
        first.execute(Query.topk(k=K))
        # The second connection sees the first one's warm cache.
        assert second.execute(Query.topk(k=K)).cache_misses == 0

    def test_served_connection_sync_and_async(self):
        database = random_tuple_independent_database(12, rng=8)
        sharded = ShardedDatabase(database, 2)
        oracle = QuerySession(database.tree)
        expected = oracle.mean_topk_symmetric_difference(K)

        async def scenario():
            async with ServingExecutor(sharded) as executor:
                conn = connect(executor)
                assert conn.deployment == "served"
                assert conn.executor is executor
                through_executor = await conn.execute_async(Query.topk(k=K))
                # Synchronous execute inside the executor's own event loop
                # would deadlock (and race the merge pool); it must refuse.
                with pytest.raises(PlanningError):
                    conn.execute(Query.topk(k=K))
                return conn, through_executor

        conn, through_executor = asyncio.run(scenario())
        assert _close(through_executor.value, expected)
        assert through_executor.deployment == "served"
        # Once the executor's loop is gone, the sync path answers directly
        # from the (now uncontended) coordinator session.
        direct = conn.execute(Query.topk(k=K))
        assert _close(direct.value, expected)

    def test_served_sync_execute_from_thread_routes_through_executor(self):
        database = random_tuple_independent_database(12, rng=8)
        sharded = ShardedDatabase(database, 2)

        async def scenario():
            async with ServingExecutor(sharded) as executor:
                conn = connect(executor)
                await conn.execute_async(Query.topk(k=K))
                before = executor.metrics()
                # A sync call from an application thread must serialize
                # through the executor (thread-safe loop handoff), not
                # touch the coordinator session concurrently.
                answer = await asyncio.get_running_loop().run_in_executor(
                    None, conn.execute, Query.membership(K)
                )
                after = executor.metrics()
                return answer, before, after

        answer, before, after = asyncio.run(scenario())
        assert answer.deployment == "served"
        assert after.queries + after.coalesced > before.queries + before.coalesced

    def test_session_execute_convenience(self):
        database = random_tuple_independent_database(12, rng=8)
        session = QuerySession(database.tree)
        answer = session.execute(Query.topk(k=K))
        assert answer.value == session.mean_topk_symmetric_difference(K)
        assert "Theorem 3" in session.explain(Query.topk(k=K))

    def test_resolve_session_served_deployment(self):
        database = random_tuple_independent_database(8, rng=8)
        sharded = ShardedDatabase(database, 2)
        executor = ServingExecutor(sharded)
        session, deployment = resolve_session(executor)
        assert deployment == "served"
        assert session is sharded.coordinator()


# ----------------------------------------------------------------------
# Serving integration: coalescing keyed by query hashes
# ----------------------------------------------------------------------
class TestServingIntegration:
    def test_wire_requests_and_queries_coalesce_together(self):
        database = random_tuple_independent_database(16, rng=13)
        sharded = ShardedDatabase(database, SHARDS)

        async def scenario():
            async with ServingExecutor(
                sharded, batch_window=0.002
            ) as executor:
                wire = QueryRequest.make("mean_topk_footrule", K)
                declarative = Query.topk(k=K).distance("footrule")
                results = await asyncio.gather(
                    *(
                        executor.submit(wire if i % 2 else declarative)
                        for i in range(10)
                    )
                )
                return results, executor.metrics()

        results, metrics = asyncio.run(scenario())
        assert all(result == results[0] for result in results)
        # Wire requests and declarative queries normalize to the same
        # query object, so they share one in-flight computation.
        assert metrics.coalesced > 0

    def test_executor_execute_returns_answers_with_provenance(self):
        database = random_tuple_independent_database(12, rng=13)
        sharded = ShardedDatabase(database, 2)

        async def scenario():
            async with ServingExecutor(sharded) as executor:
                return await executor.execute(Query.topk(k=K))

        answer = asyncio.run(scenario())
        assert answer.deployment == "served"
        assert answer.provenance()["paper"] == "Theorem 3"

    def test_traffic_events_carry_queries(self):
        events = [
            event
            for event in __import__(
                "repro.workloads.traffic", fromlist=["generate_traffic"]
            ).generate_traffic([f"t{i}" for i in range(8)], 30, rng=5)
            if not event.is_update
        ]
        assert events
        for event in events:
            assert isinstance(event.query, ConsensusQuery)
            assert event.request.kind == event.query.kind

    def test_traffic_stream_is_byte_identical_to_string_kind_era(self):
        # Golden stream captured from the pre-declarative generator
        # (string-kind dispatch): seeds must keep replaying identically.
        from repro.workloads.traffic import generate_traffic

        events = generate_traffic(
            [f"t{i}" for i in range(10)], 8, rng=5, update_ratio=0.25
        )
        observed = [
            ("update", event.key, round(event.probability, 9))
            if event.is_update
            else (event.request.kind, event.request.k)
            for event in events
        ]
        assert observed == [
            ("top_k_membership", 5),
            ("mean_topk_symmetric_difference", 5),
            ("update", "t1", 0.181829047),
            ("top_k_membership", 5),
            ("update", "t0", 0.248983563),
            ("update", "t2", 0.878787377),
            ("mean_topk_symmetric_difference", 5),
            ("mean_topk_symmetric_difference", 5),
        ]
