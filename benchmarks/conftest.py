"""Pytest configuration for the benchmark harness.

Ensures the shared harness helpers (``_harness.py``) are importable and that
the package itself can be imported straight from a source checkout, and adds
a ``--repro-backend`` option selecting the compute backend benchmarks run on
(``pytest benchmarks/ --repro-backend=python`` forces the pure fallback;
the ``REPRO_BACKEND`` environment variable works everywhere else).
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(__file__)
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)


def pytest_addoption(parser):
    # Only takes effect when benchmarks/ is on the initial command line
    # (pytest registers conftest options for the directories it is invoked
    # on); plain `pytest` from the repo root ignores it harmlessly.
    parser.addoption(
        "--repro-backend",
        action="store",
        default=None,
        choices=("auto", "python", "numpy"),
        help="compute backend for repro.engine (default: auto-detect)",
    )


def pytest_configure(config):
    choice = config.getoption("--repro-backend", default=None)
    if choice:
        from repro.engine import set_backend

        set_backend(None if choice == "auto" else choice)
