"""Flow network representation for the min-cost-flow solver.

Networks are directed graphs with integer capacities and real (possibly
negative) per-unit costs, stored in the standard paired-residual-edge layout
so that the solver can push flow backwards along residual edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.exceptions import FlowError


@dataclass
class Edge:
    """A directed edge of the residual network.

    ``to`` is the head vertex index, ``capacity`` the *remaining* capacity,
    ``cost`` the per-unit cost, and ``paired`` the index of the reverse
    residual edge inside the adjacency list of ``to``.
    """

    to: int
    capacity: int
    cost: float
    paired: int
    is_reverse: bool


class FlowNetwork:
    """A directed flow network over arbitrary hashable vertex labels."""

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._labels: List[Hashable] = []
        self._adjacency: List[List[Edge]] = []
        # (tail index, edge position) of each original (non-reverse) edge, in
        # insertion order, so callers can read the flow back out.
        self._original_edges: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: Hashable) -> int:
        """Add a vertex (idempotent) and return its internal index."""
        if label in self._index:
            return self._index[label]
        index = len(self._labels)
        self._index[label] = index
        self._labels.append(label)
        self._adjacency.append([])
        return index

    def add_edge(
        self,
        tail: Hashable,
        head: Hashable,
        capacity: int,
        cost: float = 0.0,
    ) -> int:
        """Add a directed edge and return its identifier.

        The identifier can be passed to :meth:`flow_on` after a solver run to
        read back how much flow the edge carries.
        """
        if capacity < 0:
            raise FlowError(f"edge capacity must be non-negative, got {capacity}")
        tail_index = self.add_vertex(tail)
        head_index = self.add_vertex(head)
        forward = Edge(
            to=head_index,
            capacity=int(capacity),
            cost=float(cost),
            paired=len(self._adjacency[head_index]),
            is_reverse=False,
        )
        backward = Edge(
            to=tail_index,
            capacity=0,
            cost=-float(cost),
            paired=len(self._adjacency[tail_index]),
            is_reverse=True,
        )
        self._adjacency[tail_index].append(forward)
        self._adjacency[head_index].append(backward)
        edge_id = len(self._original_edges)
        self._original_edges.append(
            (tail_index, len(self._adjacency[tail_index]) - 1)
        )
        return edge_id

    # ------------------------------------------------------------------
    # Accessors used by the solver
    # ------------------------------------------------------------------
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._labels)

    def vertex_index(self, label: Hashable) -> int:
        """Internal index of a vertex label."""
        if label not in self._index:
            raise FlowError(f"unknown vertex {label!r}")
        return self._index[label]

    def adjacency(self) -> List[List[Edge]]:
        """The (mutable) residual adjacency lists."""
        return self._adjacency

    def labels(self) -> List[Hashable]:
        """Vertex labels in index order."""
        return list(self._labels)

    # ------------------------------------------------------------------
    # Reading results
    # ------------------------------------------------------------------
    def flow_on(self, edge_id: int) -> int:
        """Flow currently carried by the edge with the given identifier.

        The flow equals the capacity of the paired reverse edge.
        """
        if not 0 <= edge_id < len(self._original_edges):
            raise FlowError(f"unknown edge id {edge_id}")
        tail_index, position = self._original_edges[edge_id]
        edge = self._adjacency[tail_index][position]
        reverse = self._adjacency[edge.to][edge.paired]
        return reverse.capacity

    def edge_count(self) -> int:
        """Number of original (non-residual) edges."""
        return len(self._original_edges)
