"""Experiment E10: the MAX-2-SAT hardness construction (Section 4.1).

Exercises the reduction end to end: for random 2-CNF formulas the median
answer of the reduced query must contain exactly as many clause tuples as an
optimal MAX-2-SAT assignment satisfies.  Also contrasts the cost of the
polynomial per-tuple probability computation with the exponential cost of the
exhaustive median search, which is the asymmetry the hardness result is
about.
"""

from __future__ import annotations

import random
import time

from _harness import report
from repro.consensus.hardness import (
    build_reduction,
    exhaustive_max_2sat,
    median_answer_by_enumeration,
    verify_reduction,
)


def _random_clauses(seed, variables, clauses):
    rng = random.Random(seed)
    names = [f"x{i}" for i in range(variables)]
    out = []
    for _ in range(clauses):
        first, second = rng.sample(names, 2)
        out.append(((first, rng.random() < 0.5), (second, rng.random() < 0.5)))
    return out


def test_e10_reduction_correspondence(benchmark):
    rows = []
    for seed in range(5):
        clauses = _random_clauses(seed, variables=5, clauses=8)
        reduction = build_reduction(clauses)
        _, optimum = exhaustive_max_2sat(reduction.instance)
        answer, _, _ = median_answer_by_enumeration(reduction)
        rows.append((seed, len(clauses), optimum, len(answer)))
        assert verify_reduction(reduction)
    report(
        "E10a",
        "MAX-2-SAT optimum vs size of the median answer of the reduced query",
        ("seed", "clauses", "MAX-2-SAT optimum", "median answer size"),
        rows,
    )
    sample = build_reduction(_random_clauses(0, 5, 8))
    benchmark(lambda: median_answer_by_enumeration(sample))


def test_e10_polynomial_versus_exponential(benchmark):
    rows = []
    for variables in (6, 8, 10, 12):
        clauses = _random_clauses(variables, variables=variables,
                                  clauses=2 * variables)
        reduction = build_reduction(clauses)
        start = time.perf_counter()
        probabilities = [
            reduction.result_tuple_probability(index)
            for index in range(len(clauses))
        ]
        marginal_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        median_answer_by_enumeration(reduction)
        median_elapsed = time.perf_counter() - start
        rows.append(
            (variables, len(clauses), marginal_elapsed, median_elapsed,
             min(probabilities))
        )
    report(
        "E10b",
        "Per-tuple probabilities (polynomial) vs median answer search "
        "(exponential in the number of variables)",
        ("variables", "clauses", "marginals (s)", "median search (s)",
         "min tuple probability"),
        rows,
        notes=(
            "Result-tuple probabilities stay trivial to compute while the "
            "median-answer search doubles with every added variable -- the "
            "gap Section 4.1 formalises as NP-hardness."
        ),
    )
    sample = build_reduction(_random_clauses(3, 8, 16))
    benchmark(
        lambda: [
            sample.result_tuple_probability(i)
            for i in range(len(sample.instance.clauses))
        ]
    )
