"""The MAX-2-SAT reduction of Section 4.1.

The paper shows that finding a *median* world is NP-hard under arbitrary
correlations, even when result-tuple probabilities are easy to compute, by
reducing MAX-2-SAT to the median answer of a two-relation join query:

* ``S(x, b)`` is a probabilistic relation with two mutually exclusive,
  equi-probable (probability 0.5 each) tuples per variable -- one for each
  truth value;
* ``R(C, x, b)`` is a certain relation with one tuple per (clause, satisfying
  literal) pair;
* the answer of ``π_C(R ⋈ S)`` in a possible world is exactly the set of
  clauses satisfied by the truth assignment that world encodes, so the median
  answer under the symmetric difference distance is the answer of an
  assignment maximising the number of satisfied clauses.

This module constructs the reduction explicitly, provides an exhaustive
MAX-2-SAT solver, and computes the median answer by enumerating the possible
worlds of ``S``; tests verify that the two coincide, reproducing the
reduction argument end to end.  Because enumeration is exponential, the
module also ships the fallback the hardness results prescribe:
:func:`approximate_median_answer_by_sampling` estimates the median answer
through the batched Monte-Carlo engine
(:class:`repro.engine.MonteCarloSampler`) instead of enumerating the
``2^n`` assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Tuple

from repro.andxor.builders import bid_tree
from repro.andxor.tree import AndXorTree
from repro.engine.sampling import MonteCarloSampler, RandomSource
from repro.exceptions import ConsensusError, EnumerationLimitError

# A literal is (variable, required truth value); a clause is a pair of
# literals interpreted as a disjunction.
Literal = Tuple[Hashable, bool]
Clause = Tuple[Literal, Literal]
Assignment = Dict[Hashable, bool]


@dataclass(frozen=True)
class Max2SatInstance:
    """A MAX-2-SAT instance: variables and two-literal clauses."""

    variables: Tuple[Hashable, ...]
    clauses: Tuple[Clause, ...]

    def satisfied_clauses(self, assignment: Assignment) -> FrozenSet[int]:
        """Indices of the clauses satisfied by ``assignment``."""
        satisfied = set()
        for index, clause in enumerate(self.clauses):
            for variable, required in clause:
                if assignment.get(variable) == required:
                    satisfied.add(index)
                    break
        return frozenset(satisfied)

    def count_satisfied(self, assignment: Assignment) -> int:
        """Number of clauses satisfied by ``assignment``."""
        return len(self.satisfied_clauses(assignment))


def make_instance(clauses: Iterable[Clause]) -> Max2SatInstance:
    """Build a :class:`Max2SatInstance`, inferring the variable set."""
    clause_list = []
    variables: List[Hashable] = []
    seen = set()
    for clause in clauses:
        clause = tuple(clause)
        if len(clause) != 2:
            raise ConsensusError(
                f"a 2-SAT clause must have exactly two literals, got {clause!r}"
            )
        for variable, required in clause:
            if not isinstance(required, bool):
                raise ConsensusError(
                    f"literal truth value must be a bool, got {required!r}"
                )
            if variable not in seen:
                seen.add(variable)
                variables.append(variable)
        clause_list.append(clause)
    return Max2SatInstance(tuple(variables), tuple(clause_list))


# ----------------------------------------------------------------------
# The reduction
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Reduction:
    """The probabilistic database produced by the reduction.

    Attributes
    ----------
    instance:
        The MAX-2-SAT instance being encoded.
    variable_relation:
        The and/xor tree of ``S(x, b)``: one BID block per variable with two
        equi-probable alternatives (True / False).
    clause_relation:
        The certain relation ``R(C, x, b)`` as a list of
        ``(clause index, variable, truth value)`` triples.
    """

    instance: Max2SatInstance
    variable_relation: AndXorTree
    clause_relation: Tuple[Tuple[int, Hashable, bool], ...]

    def result_tuple_probability(self, clause_index: int) -> float:
        """Probability that the result tuple for a clause is present.

        A clause over two distinct variables is falsified only by one of the
        four equi-probable joint assignments, so the probability is 3/4; a
        degenerate clause repeating one literal has probability 1/2.
        """
        clause = self.instance.clauses[clause_index]
        (first_variable, first_value), (second_variable, second_value) = clause
        if first_variable == second_variable:
            if first_value == second_value:
                return 0.5
            return 1.0
        return 0.75

    def answer_of_assignment(self, assignment: Assignment) -> FrozenSet[int]:
        """The query answer ``π_C(R ⋈ S)`` in the world encoding ``assignment``."""
        present = set()
        for clause_index, variable, value in self.clause_relation:
            if assignment.get(variable) == value:
                present.add(clause_index)
        return frozenset(present)


def build_reduction(clauses: Iterable[Clause]) -> Reduction:
    """Construct the paper's reduction from a set of 2-SAT clauses."""
    instance = make_instance(clauses)
    blocks = [
        (variable, [(True, 0.5), (False, 0.5)])
        for variable in instance.variables
    ]
    variable_relation = bid_tree(blocks)
    clause_relation: List[Tuple[int, Hashable, bool]] = []
    for index, clause in enumerate(instance.clauses):
        for variable, value in clause:
            clause_relation.append((index, variable, value))
    return Reduction(instance, variable_relation, tuple(clause_relation))


# ----------------------------------------------------------------------
# Exhaustive solvers (exponential; reductions are to an NP-hard problem)
# ----------------------------------------------------------------------
def enumerate_assignments(
    variables: Sequence[Hashable], limit: int = 1 << 22
) -> Iterable[Assignment]:
    """Yield every truth assignment over ``variables``."""
    if 2 ** len(variables) > limit:
        raise EnumerationLimitError(
            f"enumerating 2^{len(variables)} assignments exceeds the limit"
        )
    for values in product((False, True), repeat=len(variables)):
        yield dict(zip(variables, values))


def exhaustive_max_2sat(
    instance: Max2SatInstance, limit: int = 1 << 22
) -> Tuple[Assignment, int]:
    """Optimal MAX-2-SAT assignment by exhaustive search."""
    best: Tuple[Assignment, int] | None = None
    for assignment in enumerate_assignments(instance.variables, limit):
        count = instance.count_satisfied(assignment)
        if best is None or count > best[1]:
            best = (assignment, count)
    if best is None:
        return {}, 0
    return best


def median_answer_by_enumeration(
    reduction: Reduction, limit: int = 1 << 22
) -> Tuple[FrozenSet[int], Assignment, float]:
    """Median query answer of the reduction, by enumerating assignments.

    Every truth assignment is an equi-probable possible world; the median
    answer minimises the expected symmetric difference to the random answer.
    Returns the winning answer, a witnessing assignment, and the expected
    distance.
    """
    instance = reduction.instance
    assignments = list(enumerate_assignments(instance.variables, limit))
    world_probability = 1.0 / len(assignments)
    answers = [reduction.answer_of_assignment(a) for a in assignments]

    # Expected symmetric difference decomposes over clauses: an answer
    # containing clause c pays (1 - Pr(c)), an answer omitting it pays Pr(c).
    clause_probability = {
        index: reduction.result_tuple_probability(index)
        for index in range(len(instance.clauses))
    }

    def expected_distance(candidate: FrozenSet[int]) -> float:
        total = 0.0
        for index, probability in clause_probability.items():
            if index in candidate:
                total += 1.0 - probability
            else:
                total += probability
        return total

    best_index = min(
        range(len(assignments)), key=lambda i: expected_distance(answers[i])
    )
    best_answer = answers[best_index]
    return best_answer, assignments[best_index], expected_distance(best_answer)


def approximate_median_answer_by_sampling(
    reduction: Reduction,
    samples: int = 2000,
    rng: RandomSource = None,
) -> Tuple[FrozenSet[int], Assignment, float]:
    """Monte-Carlo approximation of the median query answer.

    The hardness results of Section 4.1 rule out efficient exact median
    computation, so this is the prescribed fallback: draw ``samples`` truth
    assignments from the variable relation through the batched engine
    sampler (one vectorized categorical draw per variable block across the
    whole batch), estimate every clause's result-tuple probability from the
    sampled answers, and return the sampled answer minimising the estimated
    expected symmetric difference.

    ``rng`` follows the usual convention (generator, integer seed, or None
    for the ``REPRO_SEED``-seedable default).  Returns the winning answer,
    a witnessing assignment, and its estimated expected distance.
    """
    if samples <= 0:
        raise ConsensusError("samples must be positive")
    sampler = MonteCarloSampler(reduction.variable_relation, rng=rng)
    worlds = sampler.sample_batch(samples).worlds()
    assignments = [
        {alternative.key: alternative.value for alternative in world}
        for world in worlds
    ]
    answers = [reduction.answer_of_assignment(a) for a in assignments]

    clause_count = len(reduction.instance.clauses)
    frequency = [0.0] * clause_count
    for answer in answers:
        for index in answer:
            frequency[index] += 1.0
    frequency = [count / samples for count in frequency]

    def estimated_distance(candidate: FrozenSet[int]) -> float:
        return sum(
            1.0 - probability if index in candidate else probability
            for index, probability in enumerate(frequency)
        )

    best_index = min(
        range(samples),
        key=lambda i: (estimated_distance(answers[i]), sorted(answers[i])),
    )
    best_answer = answers[best_index]
    return (
        best_answer,
        assignments[best_index],
        estimated_distance(best_answer),
    )


def verify_reduction(reduction: Reduction, limit: int = 1 << 22) -> bool:
    """Check that the median answer corresponds to a MAX-2-SAT optimum.

    Returns True when the number of clauses in the median answer equals the
    optimal number of satisfiable clauses, reproducing the argument of
    Section 4.1.
    """
    _, optimal_count = exhaustive_max_2sat(reduction.instance, limit)
    median_answer, witness, _ = median_answer_by_enumeration(reduction, limit)
    return (
        len(median_answer) == optimal_count
        and reduction.instance.count_satisfied(witness) == optimal_count
    )
