"""Tests for the model facades (tuple-independent, BID, x-tuples, relation)."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import ProbabilityError
from repro.models import (
    BlockIndependentDatabase,
    ProbabilisticRelation,
    TupleIndependentDatabase,
    XTupleDatabase,
)


class TestTupleIndependentDatabase:
    def test_construction_and_probabilities(self):
        database = TupleIndependentDatabase(
            [("a", 10, 0.5), ("b", 20, 30.0, 0.25)]
        )
        assert database.presence_probability("a") == pytest.approx(0.5)
        assert database.tuple_probabilities() == {"a": 0.5, "b": 0.25}
        assert len(database) == 2

    def test_duplicate_key_rejected(self):
        with pytest.raises(ProbabilityError):
            TupleIndependentDatabase([("a", 1, 0.5), ("a", 2, 0.5)])

    def test_bad_arity_rejected(self):
        with pytest.raises(ProbabilityError):
            TupleIndependentDatabase([("a", 1)])

    def test_expected_size_and_distribution(self):
        database = TupleIndependentDatabase([("a", 1, 0.5), ("b", 2, 0.5)])
        assert database.expected_size() == pytest.approx(1.0)
        assert sum(database.size_distribution()) == pytest.approx(1.0)


class TestBlockIndependentDatabase:
    def test_construction(self):
        database = BlockIndependentDatabase(
            {"a": [(1, 0.4), (2, 0.4)], "b": [(3, 5.0, 1.0)]}
        )
        assert database.block_presence_probability("a") == pytest.approx(0.8)
        assert database.presence_probability("b") == pytest.approx(1.0)
        assert set(database.blocks()) == {"a", "b"}

    def test_duplicate_block_rejected(self):
        with pytest.raises(ProbabilityError):
            BlockIndependentDatabase([("a", [(1, 0.4)]), ("a", [(2, 0.4)])])

    def test_bad_alternative_arity(self):
        with pytest.raises(ProbabilityError):
            BlockIndependentDatabase({"a": [(1, 2, 3, 4)]})

    def test_explicit_scores_survive(self):
        database = BlockIndependentDatabase({"a": [("red", 7.0, 1.0)]})
        alternative = database.alternatives()[0]
        assert alternative.score == 7.0


class TestXTupleDatabase:
    def test_construction(self):
        database = XTupleDatabase(
            [[("a", 10, 0.5), ("b", 20, 0.5)], [("c", 30, 15.0, 0.9)]]
        )
        assert len(database) == 3
        assert len(database.groups()) == 2
        assert database.presence_probability("c") == pytest.approx(0.9)

    def test_mutual_exclusion(self):
        database = XTupleDatabase([[("a", 10, 0.5), ("b", 20, 0.5)]])
        worlds = database.possible_worlds()
        assert all(
            not (w.contains_key("a") and w.contains_key("b"))
            for w in worlds.worlds
        )

    def test_bad_member_arity(self):
        with pytest.raises(ProbabilityError):
            XTupleDatabase([[("a", 1)]])


class TestProbabilisticRelationFacade:
    def test_facade_methods(self):
        database = BlockIndependentDatabase(
            {"a": [(10, 0.5), (20, 0.5)], "b": [(30, 0.7)]}
        )
        assert isinstance(database, ProbabilisticRelation)
        assert set(database.keys()) == {"a", "b"}
        assert len(database.alternatives()) == 3
        probabilities = database.presence_probabilities()
        assert probabilities["a"] == pytest.approx(1.0)
        worlds = database.possible_worlds()
        assert math.isclose(worlds.total_probability(), 1.0)
        rng = random.Random(0)
        assert len(database.sample_worlds(10, rng)) == 10
        world = database.sample_world(rng)
        assert set(a.key for a in world) <= {"a", "b"}
        statistics = database.rank_statistics()
        assert statistics is database.rank_statistics()  # cached
        assert "tuples" in repr(database)
