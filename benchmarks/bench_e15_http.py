"""Experiment E15: HTTP front door overhead and in-protocol load shedding.

Two cases over the scaled movie-ratings scenario (tuple-independent,
``n ≈ 10⁴`` at full size), fronted by the asyncio HTTP server:

* **E15a -- loopback HTTP vs in-process serving.**  The E13 mixed
  read/update traffic stream is replayed twice against identically-seeded
  4-shard databases: once through the in-process
  :class:`~repro.serving.ServingExecutor` (the E13 path) and once over
  loopback HTTP through :class:`~repro.server.ReproClient` /
  :func:`~repro.workloads.replay_traffic_http`.  Every per-position query
  value is asserted equal to 1e-9 across the wire -- the JSON codec is
  loss-free, so the HTTP answer *is* the in-process answer.  The table
  reports req/s and client-observed p50/p95 per path; the acceptance bar
  (full scale, NumPy backend) is loopback p95 <= 3x in-process p95.
* **E15b -- bounded admission under a concurrent blast.**  A small
  ``max_inflight`` server takes a synchronized burst from many client
  threads.  Nothing is ever dropped silently: every request resolves to
  200/429/503/504, the per-status counts sum to the number sent, and the
  server's own admission ledger agrees.  Load shedding must engage
  (some 429s) without starving the service (some 200s).

Set ``REPRO_BENCH_SMOKE=1`` to shrink both cases to seconds (the CI smoke
leg).  JSON results record the active backend and the traffic seed.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections import Counter

from _harness import report
from repro.engine import get_backend
from repro.models import ShardedDatabase
from repro.server import ServerThread
from repro.serving import ServingExecutor
from repro.serving.requests import QueryRequest
from repro.workloads.scenarios import movie_rating_scenario
from repro.workloads.traffic import (
    generate_traffic,
    replay_traffic,
    replay_traffic_http,
    traffic_signature,
)

SEED = 20260808
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SCALE = 40.0 if SMOKE else 1200.0  # n = 400 smoke / 12_000 full
SHARDS = 4
EVENT_COUNT = 36 if SMOKE else 120
CONCURRENCY = 8
K = 10

# E15b blast geometry: more concurrent senders than admission slots.
BLAST_THREADS = 8
BLAST_PER_THREAD = 6 if SMOKE else 24
BLAST_INFLIGHT = 2


def _database():
    return movie_rating_scenario(scale=SCALE).database


def _traffic(keys):
    return generate_traffic(
        keys,
        EVENT_COUNT,
        rng=SEED,
        update_ratio=0.4,
        k_choices=(K,),
        popular_pool=6,
    )


def _percentiles(samples):
    ordered = sorted(samples)
    pick = lambda fraction: ordered[
        min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    ]
    return pick(0.50), pick(0.95)


def _assert_value_parity(expected, actual, tolerance=1e-9, where=()):
    """Structural 1e-9 equality between an in-process and a wire value."""
    if isinstance(expected, float) or isinstance(actual, float):
        assert abs(float(expected) - float(actual)) <= tolerance, (
            where, expected, actual
        )
    elif isinstance(expected, dict):
        assert isinstance(actual, dict), (where, expected, actual)
        assert set(expected.keys()) == set(actual.keys()), where
        for key in expected:
            _assert_value_parity(
                expected[key], actual[key], tolerance, where + (key,)
            )
    elif isinstance(expected, (list, tuple)):
        assert type(expected) is type(actual), (where, expected, actual)
        assert len(expected) == len(actual), (where, expected, actual)
        for index, (left, right) in enumerate(zip(expected, actual)):
            _assert_value_parity(left, right, tolerance, where + (index,))
    else:
        assert expected == actual, (where, expected, actual)


def _replay_in_process(sharded, events):
    async def run():
        async with ServingExecutor(sharded) as executor:
            # One warm query keeps one-time construction out of the
            # steady-state comparison, mirroring the HTTP leg's warm-up.
            await executor.query("top_k_membership", k=K)
            start = time.perf_counter()
            values = await replay_traffic(
                executor, events, concurrency=CONCURRENCY
            )
            elapsed = time.perf_counter() - start
            return values, elapsed, executor.metrics()

    return asyncio.run(run())


class _TimingClient:
    """Delegates to a :class:`ReproClient`, timing every query POST."""

    def __init__(self, client):
        self._client = client
        self._lock = threading.Lock()
        self.latencies = []

    def query(self, query, deadline_ms=None):
        start = time.perf_counter()
        answer = self._client.query(query, deadline_ms=deadline_ms)
        with self._lock:
            self.latencies.append(time.perf_counter() - start)
        return answer

    def update(self, key, probability=None, score=None):
        return self._client.update(key, probability=probability, score=score)


def test_e15a_loopback_vs_in_process(benchmark):
    database = _database()
    events = _traffic(database.tree.keys())
    query_count = sum(1 for event in events if not event.is_update)
    update_count = len(events) - query_count
    # The HTTP leg replays against an identically-seeded twin database so
    # the in-process leg's updates cannot leak into its starting state.
    twin = _database()
    assert traffic_signature(_traffic(twin.tree.keys())) == (
        traffic_signature(events)
    ), "seeded traffic generation diverged between the twin databases"

    inproc_values, inproc_elapsed, inproc_metrics = _replay_in_process(
        ShardedDatabase(database, SHARDS, partitioner="hash"), events
    )

    sharded = ShardedDatabase(twin, SHARDS, partitioner="hash")
    with sharded:
        with ServerThread(sharded, max_inflight=64) as thread:
            client = thread.client()
            try:
                client.query(QueryRequest.make("top_k_membership", K))
                timed = _TimingClient(client)
                start = time.perf_counter()
                http_values = replay_traffic_http(
                    timed, events, concurrency=CONCURRENCY
                )
                http_elapsed = time.perf_counter() - start
            finally:
                client.close()

    assert len(inproc_values) == len(http_values) == len(events)
    for position, event in enumerate(events):
        if event.is_update:
            assert http_values[position] is None
            continue
        _assert_value_parity(
            inproc_values[position], http_values[position], where=(position,)
        )

    http_p50, http_p95 = _percentiles(timed.latencies)
    rows = [
        (
            "in-process",
            inproc_elapsed,
            len(events) / inproc_elapsed,
            inproc_metrics.latency_p50 * 1000.0,
            inproc_metrics.latency_p95 * 1000.0,
        ),
        (
            "loopback HTTP",
            http_elapsed,
            len(events) / http_elapsed,
            http_p50 * 1000.0,
            http_p95 * 1000.0,
        ),
    ]
    ratio = (http_p95 * 1000.0) / max(
        inproc_metrics.latency_p95 * 1000.0, 1e-9
    )
    report(
        "E15a",
        f"HTTP front door vs in-process serving, {SHARDS} shards, "
        f"n = {len(database.tree.keys())}, k = {K}",
        ("path", "wall (s)", "events/s", "p50 (ms)", "p95 (ms)"),
        rows,
        notes=(
            f"seed={SEED}, backend={get_backend().name}.  {len(events)} "
            f"events ({query_count} queries, {update_count} updates), "
            f"concurrency={CONCURRENCY}, identically-seeded twin "
            "databases; per-position query values asserted equal to 1e-9 "
            "across the wire (loss-free JSON).  HTTP latencies are "
            "client-observed over loopback (framing + codec + socket); "
            f"p95 ratio {ratio:.2f}x against the <= 3x full-scale bar."
        ),
    )
    if not SMOKE and get_backend().name == "numpy":
        assert http_p95 <= 3.0 * inproc_metrics.latency_p95, (
            f"loopback p95 {http_p95 * 1000.0:.2f} ms exceeds 3x the "
            f"in-process p95 {inproc_metrics.latency_p95 * 1000.0:.2f} ms"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e15b_load_shed_accounting(benchmark):
    database = movie_rating_scenario(scale=2.0).database
    sharded = ShardedDatabase(database, 2, partitioner="hash")
    sent = BLAST_THREADS * BLAST_PER_THREAD
    statuses = Counter()
    lock = threading.Lock()
    with sharded:
        with ServerThread(
            sharded, max_inflight=BLAST_INFLIGHT, batch_window=0.02
        ) as thread:
            client = thread.client()
            try:
                barrier = threading.Barrier(BLAST_THREADS)
                request = QueryRequest.make("top_k_membership", K)

                def blast():
                    barrier.wait()
                    local = Counter()
                    for _ in range(BLAST_PER_THREAD):
                        status, _body = client.query_raw(request)
                        local[status] += 1
                    with lock:
                        statuses.update(local)

                workers = [
                    threading.Thread(target=blast)
                    for _ in range(BLAST_THREADS)
                ]
                start = time.perf_counter()
                for worker in workers:
                    worker.start()
                for worker in workers:
                    worker.join()
                elapsed = time.perf_counter() - start
                admissions = client.metrics()["admissions"]
            finally:
                client.close()

    # Zero silent drops: every request resolved with an in-protocol
    # status, the counts add up, and the server's ledger agrees.
    assert set(statuses) <= {200, 429, 503, 504}, dict(statuses)
    assert sum(statuses.values()) == sent
    assert sum(admissions.values()) == sent, admissions
    assert statuses[200] > 0, "load shedding starved the service entirely"
    assert statuses[429] > 0, (
        f"blast of {BLAST_THREADS} threads over {BLAST_INFLIGHT} admission "
        "slots never tripped 429"
    )
    rows = [
        (
            status,
            count,
            count / sent,
            admissions.get(str(status), 0),
        )
        for status, count in sorted(statuses.items())
    ]
    report(
        "E15b",
        f"Admission control under a concurrent blast "
        f"({BLAST_THREADS} threads, max_inflight={BLAST_INFLIGHT})",
        ("status", "client count", "fraction", "server ledger"),
        rows,
        notes=(
            f"seed={SEED}, backend={get_backend().name}.  {sent} requests "
            f"in {elapsed:.2f}s ({sent / elapsed:.0f} req/s offered); "
            "429s carry Retry-After, and client counts reconcile exactly "
            "with the server's per-status admission ledger -- nothing "
            "was dropped silently."
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
