"""Rank-position probabilities over and/xor trees (Example 3, Section 5).

Ranking queries score every alternative and rank the tuples of a possible
world by decreasing score; ``r(t)`` denotes the (random) rank of tuple ``t``
with ``r(t) = ∞`` when ``t`` is absent.  This module computes

* ``Pr(r(t) = i)`` for every tuple and position (Example 3 of the paper),
* the cumulative probabilities ``Pr(r(t) <= i)`` used throughout Section 5,
* pairwise preference probabilities ``Pr(r(t_i) < r(t_j))`` needed by the
  Kendall-tau approximation (Section 5.5), and
* Cormode-style expected ranks used as a baseline ranking semantics.

The computation follows the paper's generating-function framework: for a
leaf carrying alternative ``(t, a)`` with score ``s``, condition on that
leaf being present (which pins the independent xor choices on its root
path) and take the univariate generating function marking every leaf of a
*different* key with score larger than ``s``; the coefficient of
``x^(j-1)`` times the leaf's probability is the probability that ``t`` is
ranked at position ``j`` through this leaf.  Probabilities of a tuple's
leaves add up because same-key leaves are mutually exclusive.  This is
equivalent to the paper's per-alternative bivariate generating function
with ``y`` on the target leaf, but the conditional univariate form batches
its and-node products through the engine's multiply-accumulate kernel.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.andxor.generating import (
    conditional_univariate_generating_function,
)
from repro.andxor.nodes import Leaf
from repro.andxor.tree import AndXorTree
from repro.core.tuples import TupleAlternative
from repro.engine import PairwisePreferenceMatrix, RankMatrix, get_backend
from repro.exceptions import ModelError

ScoringFunction = Callable[[TupleAlternative], float]


class RankStatistics:
    """Caches rank-position probabilities for one and/xor tree.

    Parameters
    ----------
    tree:
        The and/xor tree.  Every leaf must carry a numeric score (either an
        explicit score or a numeric value attribute) unless ``scoring``
        supplies the scores.
    validate_scores:
        When True (default) scores of alternatives belonging to *different*
        tuples must be pairwise distinct, matching the paper's no-ties
        assumption.
    scoring:
        Optional scoring function overriding
        :meth:`TupleAlternative.effective_score`; this is how a
        :class:`repro.session.QuerySession` re-scores a database without
        rebuilding the tree.
    """

    def __init__(
        self,
        tree: AndXorTree,
        validate_scores: bool = True,
        use_fast_path: bool = True,
        scoring: Optional[ScoringFunction] = None,
    ) -> None:
        self._tree = tree
        self._scoring = scoring
        # Construction flags, re-read by QuerySession so invalidation can
        # rebuild an equivalent statistics object.
        self._validate_scores_flag = validate_scores
        self._use_fast_path_flag = use_fast_path
        if scoring is None:
            self._scores = {
                alternative: alternative.effective_score()
                for alternative in tree.alternatives()
            }
        else:
            self._scores = {
                alternative: float(scoring(alternative))
                for alternative in tree.alternatives()
            }
        if validate_scores:
            self._validate_scores()
        self._rank_cache: Dict[Tuple[Hashable, int], List[float]] = {}
        # Fast path: pure tuple-level uncertainty over independent tuples
        # (every xor block holds a single leaf).  The rank distributions of
        # all tuples can then be computed in one O(n * max_rank) sweep.
        self._fast_layout: Optional[List[Tuple[Hashable, float, float]]] = (
            self._detect_fast_layout() if use_fast_path else None
        )
        self._matrix_cache: Dict[int, RankMatrix] = {}
        self._preference_cache: Dict[
            Optional[Tuple[Hashable, ...]], PairwisePreferenceMatrix
        ] = {}
        self._expected_rank_cache: Optional[Dict[Hashable, float]] = None

    def _detect_fast_layout(
        self,
    ) -> Optional[List[Tuple[Hashable, float, float]]]:
        """Detect the tuple-independent layout enabling the O(n k) sweep.

        Returns, when applicable, the list of ``(key, probability, score)``
        triples sorted by decreasing score; otherwise None.
        """
        from repro.andxor.nodes import AndNode, XorNode  # local import

        root = self._tree.root
        if not isinstance(root, AndNode):
            return None
        layout: List[Tuple[Hashable, float, float]] = []
        for child in root.children():
            if not isinstance(child, XorNode):
                return None
            edges = child.edges()
            if len(edges) != 1 or not edges[0][0].is_leaf():
                return None
            leaf, probability = edges[0]
            layout.append(
                (
                    leaf.alternative.key,
                    probability,
                    self._scores[leaf.alternative],
                )
            )
        if len({key for key, _, _ in layout}) != len(layout):
            return None
        layout.sort(key=lambda item: -item[2])
        return layout

    def rank_matrix(self, max_rank: int | None = None) -> RankMatrix:
        """Batched rank-position probabilities for every tuple at once.

        Returns the :class:`~repro.engine.RankMatrix` whose row for key
        ``t`` is ``[Pr(r(t) = 1), ..., Pr(r(t) = max_rank)]``.  For
        tuple-independent databases the whole matrix is produced by one
        backend sweep of the running product ``Π (1 - p_i + p_i x)`` in
        decreasing score order (the probability that a tuple has rank ``j``
        is its own probability times the coefficient of ``x^(j-1)``); the
        general and/xor layout assembles the matrix from per-leaf
        conditional univariate generating functions (see
        :meth:`_general_rank_positions`).  Matrices are cached per
        ``max_rank``.
        """
        if max_rank is None:
            max_rank = self.number_of_tuples()
        cached = self._matrix_cache.get(max_rank)
        if cached is not None:
            return cached
        backend = get_backend()
        if self._fast_layout is not None:
            keys = [key for key, _, _ in self._fast_layout]
            probabilities = [p for _, p, _ in self._fast_layout]
            native = backend.rank_probability_matrix(probabilities, max_rank)
        else:
            keys = self.keys()
            native = backend.matrix_from_rows(
                [
                    self._general_rank_positions(key, max_rank)
                    for key in keys
                ]
            )
        matrix = RankMatrix(keys, native, backend, max_rank)
        self._matrix_cache[max_rank] = matrix
        return matrix

    def _validate_scores(self) -> None:
        by_score: Dict[float, TupleAlternative] = {}
        for alternative, score in self._scores.items():
            other = by_score.get(score)
            if other is not None and other.key != alternative.key:
                raise ModelError(
                    f"alternatives {other!r} and {alternative!r} of different "
                    f"tuples share score {score}; ranking assumes distinct "
                    "scores"
                )
            by_score[score] = alternative

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def tree(self) -> AndXorTree:
        """The underlying and/xor tree."""
        return self._tree

    def session(self) -> "QuerySession":
        """The (lazily created) query session bound to these statistics.

        Repeated coercions of the same statistics object through
        :func:`repro.session.as_session` return this one session, so
        module-level consensus calls against a shared ``RankStatistics``
        transparently share a warm artifact cache.
        """
        session = getattr(self, "_query_session", None)
        if session is None:
            from repro.session import QuerySession  # local import: no cycle

            session = QuerySession(self)
            self._query_session = session
        return session

    def independent_tuple_layout(
        self,
    ) -> Optional[List[Tuple[Hashable, float, float]]]:
        """``(key, probability, score)`` triples when the database is
        tuple-independent with tuple-level uncertainty, else None.

        The list is sorted by decreasing score.  Consensus algorithms use it
        to switch to specialised linear-time routines (e.g. the median Top-k
        answer); callers must not mutate the returned list.
        """
        if self._fast_layout is None:
            return None
        return [tuple(item) for item in self._fast_layout]

    def keys(self) -> List[Hashable]:
        """The tuple keys of the tree."""
        return self._tree.keys()

    def number_of_tuples(self) -> int:
        """Number of distinct tuple keys."""
        return len(self._tree.keys())

    def score_of(self, alternative: TupleAlternative) -> float:
        """The ranking score of an alternative."""
        return self._scores[alternative]

    # ------------------------------------------------------------------
    # Rank-position probabilities
    # ------------------------------------------------------------------
    def rank_position_probabilities(
        self, key: Hashable, max_rank: int | None = None
    ) -> List[float]:
        """Return ``[Pr(r(t) = 1), ..., Pr(r(t) = max_rank)]`` for tuple ``t``.

        ``max_rank`` defaults to the number of tuples in the tree.
        """
        if max_rank is None:
            max_rank = self.number_of_tuples()
        if self._fast_layout is not None:
            matrix = self.rank_matrix(max_rank)
            if key not in matrix:
                raise ModelError(f"unknown tuple key {key!r}")
            return matrix.row(key)
        return self._general_rank_positions(key, max_rank)

    def _general_rank_positions(
        self, key: Hashable, max_rank: int
    ) -> List[float]:
        """Per-key rank distribution via conditional generating functions.

        Conditioning on one leaf of the tuple being present fixes the
        independent xor choices on its root path, so ``Pr(r(t) = j)`` is

        ``Σ_leaves Pr(leaf) · Pr(exactly j-1 higher-scored other-key leaves
        present | leaf present)``

        and the conditional count distribution is a *univariate* generating
        function of the pinned tree -- batched through the backend's
        multiply-accumulate kernel -- instead of one bivariate generating
        function per alternative.
        """
        cached = self._rank_cache.get((key, max_rank))
        if cached is not None:
            return list(cached)
        if max_rank < 1:
            return []
        result = [0.0] * max_rank
        for alternative in self._tree.alternatives_of(key):
            threshold = self._scores[alternative]

            def marked(
                leaf: Leaf,
                target_key: Hashable = key,
                score: float = threshold,
            ) -> bool:
                return (
                    leaf.alternative.key != target_key
                    and self._scores[leaf.alternative] > score
                )

            for pinned_leaf in self._tree.leaves_of_alternative(alternative):
                leaf_probability = self._tree.leaf_probability(pinned_leaf)
                if leaf_probability == 0.0:
                    continue
                pinned = {
                    xor_id: index
                    for xor_id, (index, _) in self._tree.leaf_choices(
                        pinned_leaf
                    ).items()
                }
                polynomial = conditional_univariate_generating_function(
                    self._tree,
                    pinned,
                    marked,
                    max_degree=max_rank - 1,
                )
                for exponent, coefficient in enumerate(
                    polynomial.coefficients
                ):
                    result[exponent] += leaf_probability * coefficient
        self._rank_cache[(key, max_rank)] = list(result)
        return result

    def rank_at_most(self, key: Hashable, k: int) -> float:
        """``Pr(r(t) <= k)`` -- the probability that ``t`` is in the Top-k."""
        return sum(self.rank_position_probabilities(key, max_rank=k))

    def rank_at_most_table(self, k: int) -> Dict[Hashable, List[float]]:
        """``Pr(r(t) <= i)`` for every tuple and every ``i`` in ``1..k``."""
        return self.rank_matrix(k).cumulative().to_dict()

    def top_k_membership_probabilities(self, k: int) -> Dict[Hashable, float]:
        """``Pr(r(t) <= k)`` for every tuple key."""
        return self.rank_matrix(k).membership()

    # ------------------------------------------------------------------
    # Pairwise preferences and expected ranks
    # ------------------------------------------------------------------
    def pairwise_preference(
        self, first_key: Hashable, second_key: Hashable
    ) -> float:
        """``Pr(r(t_i) < r(t_j))`` for two distinct tuples.

        ``t_i`` is ranked strictly higher than ``t_j`` exactly when ``t_i``
        is present and either ``t_j`` is absent or ``t_i``'s realised score
        exceeds ``t_j``'s.  Only pairwise joint probabilities are needed,
        which the and/xor tree provides in closed form.
        """
        if first_key == second_key:
            return 0.0
        first_alternatives = self._tree.alternatives_of(first_key)
        second_alternatives = self._tree.alternatives_of(second_key)
        presence_first = self._tree.key_probability(first_key)
        both_with_second_higher = 0.0
        for first in first_alternatives:
            for second in second_alternatives:
                if self._scores[second] > self._scores[first]:
                    both_with_second_higher += (
                        self._tree.joint_alternative_probability(first, second)
                    )
        return presence_first - both_with_second_higher

    def preference_matrix(
        self, keys: Sequence[Hashable] | None = None
    ) -> PairwisePreferenceMatrix:
        """Batched ``Pr(r(t_i) < r(t_j))`` over ``keys`` (default: all).

        Because the preference probability of a pair does not depend on the
        other tuples, a sub-grid over a candidate pool is exactly the
        restriction of the full matrix.  For tuple-independent databases the
        whole grid is one backend kernel call
        (:meth:`~repro.engine.backends.Backend.pairwise_preference_matrix`);
        the general and/xor layout assembles the grid from the closed-form
        pairwise joint probabilities.  Matrices are cached per key subset.
        """
        cache_key: Optional[Tuple[Hashable, ...]] = (
            None if keys is None else tuple(keys)
        )
        cached = self._preference_cache.get(cache_key)
        if cached is not None:
            return cached
        backend = get_backend()
        matrix_keys = list(self.keys() if keys is None else keys)
        if self._fast_layout is not None:
            layout = {
                key: (probability, score)
                for key, probability, score in self._fast_layout
            }
            missing = [key for key in matrix_keys if key not in layout]
            if missing:
                raise ModelError(
                    f"unknown tuple keys {sorted(map(repr, missing))}"
                )
            native = backend.pairwise_preference_matrix(
                [layout[key][0] for key in matrix_keys],
                [layout[key][1] for key in matrix_keys],
            )
        else:
            native = backend.matrix_from_rows(
                [
                    [
                        self.pairwise_preference(first, second)
                        for second in matrix_keys
                    ]
                    for first in matrix_keys
                ]
            )
        matrix = PairwisePreferenceMatrix(matrix_keys, native, backend)
        self._preference_cache[cache_key] = matrix
        return matrix

    def pairwise_preference_matrix(
        self, keys: Sequence[Hashable] | None = None
    ) -> Dict[Tuple[Hashable, Hashable], float]:
        """``Pr(r(t_i) < r(t_j))`` for every ordered pair of distinct tuples.

        Thin dictionary view over :meth:`preference_matrix`, kept for source
        compatibility with pre-session callers.
        """
        return self.preference_matrix(keys).to_dict()

    def expected_rank(self, key: Hashable) -> float:
        """Cormode-style expected rank of tuple ``t``.

        In a possible world the rank of a present tuple is one plus the
        number of present tuples with a higher score; an absent tuple is
        charged rank ``|pw| + 1``.  Unlike ``r(t)`` itself (which is infinite
        for absent tuples) this quantity has a finite expectation, which is
        the "expected rank" ranking semantics of Cormode, Li and Yi used as a
        baseline in the benchmark harness.
        """
        alternatives = self._tree.alternatives_of(key)
        higher_and_present = 0.0
        for alternative in alternatives:
            for other in self._tree.alternatives():
                if other.key == key:
                    continue
                if self._scores[other] > self._scores[alternative]:
                    higher_and_present += (
                        self._tree.joint_alternative_probability(
                            alternative, other
                        )
                    )
        absent_size = 0.0
        for other_key in self.keys():
            if other_key == key:
                continue
            p_other = self._tree.key_probability(other_key)
            p_both = 0.0
            for alternative in alternatives:
                for other in self._tree.alternatives_of(other_key):
                    p_both += self._tree.joint_alternative_probability(
                        alternative, other
                    )
            absent_size += p_other - p_both
        return 1.0 + higher_and_present + absent_size

    def expected_rank_table(self) -> Dict[Hashable, float]:
        """Expected rank of every tuple key.

        On tuple-independent databases the whole table is assembled from
        prefix sums of the score-sorted probabilities in ``O(n log n)``
        (``E[rank(t_i)] = 1 + p_i S_i + (1 - p_i)(T - p_i)`` with ``S_i`` the
        probability mass of higher-scored tuples and ``T`` the total mass)
        instead of ``n²`` scalar joint-probability lookups; results are
        cached.
        """
        if self._expected_rank_cache is not None:
            return dict(self._expected_rank_cache)
        if self._fast_layout is not None:
            probabilities = [p for _, p, _ in self._fast_layout]
            total = sum(probabilities)
            table: Dict[Hashable, float] = {}
            higher_mass = 0.0
            for (key, probability, _), p in zip(
                self._fast_layout, probabilities
            ):
                table[key] = (
                    1.0
                    + probability * higher_mass
                    + (1.0 - probability) * (total - probability)
                )
                higher_mass += p
        else:
            table = {key: self.expected_rank(key) for key in self.keys()}
        self._expected_rank_cache = table
        return dict(table)


# ----------------------------------------------------------------------
# Convenience functions
# ----------------------------------------------------------------------
def rank_position_probabilities(
    tree: AndXorTree, max_rank: int | None = None
) -> Dict[Hashable, List[float]]:
    """``Pr(r(t) = i)`` for every tuple key and position ``i <= max_rank``."""
    statistics = RankStatistics(tree)
    matrix = statistics.rank_matrix(max_rank)
    return {key: matrix.row(key) for key in statistics.keys()}


def rank_at_most_probabilities(
    tree: AndXorTree, k: int
) -> Dict[Hashable, float]:
    """``Pr(r(t) <= k)`` for every tuple key."""
    statistics = RankStatistics(tree)
    return statistics.top_k_membership_probabilities(k)


def pairwise_preference_probability(
    tree: AndXorTree, first_key: Hashable, second_key: Hashable
) -> float:
    """``Pr(r(t_i) < r(t_j))`` for two tuples of the tree."""
    return RankStatistics(tree).pairwise_preference(first_key, second_key)


def expected_rank(tree: AndXorTree, key: Hashable) -> float:
    """Cormode-style expected rank of one tuple."""
    return RankStatistics(tree).expected_rank(key)
