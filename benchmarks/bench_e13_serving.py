"""Experiment E13: sharded serving layer throughput and merge overhead.

Six cases over the scaled movie-ratings scenario (tuple-independent,
``n ≈ 10⁴`` at full size):

* **E13a -- throughput vs shard count.**  A mixed read/update traffic
  stream (popular Top-k queries + single-tuple probability updates) is
  replayed through the asyncio :class:`~repro.serving.ServingExecutor` at
  shard counts 1/2/4/8.  Updates invalidate only the owning shard, so the
  unchanged shards' memoized partial summaries keep serving the cross-shard
  merge: aggregate throughput must scale (the acceptance bar is >= 2x going
  1 -> 4 shards on the NumPy backend at n >= 10^4).
* **E13b -- coalesced vs naive dispatch.**  The same bursty stream with
  request coalescing on and off.
* **E13c -- merge-overhead microbench.**  Cold merged rank matrix at the
  coordinator vs the unsharded backend sweep, plus the per-shard summary
  build time the merge amortizes.
* **E13d -- threads vs processes shard scaling.**  The same read-heavy
  stream under ``executor="threads"`` and ``executor="processes"`` at each
  shard count: the process pool escapes the GIL, so with enough cores the
  1 -> 4 shard speedup approaches linear where threads plateau (~2.2x).
  The run asserts 1e-9 rank-matrix parity between both executors before
  timing anything, and records the host core count and the multiprocessing
  start method -- on starved hosts (< 4 cores) the numbers are reported
  but the speedup bar is not enforced.
* **E13e -- IPC transport microbench.**  Cold per-shard summary exchange
  with the dense prefix tables forced over pipe-pickle vs shared memory.
* **E13f -- incremental vs full re-merge under update-heavy traffic.**
  A zipf-popularity 40%-update stream against a 4-shard process-backed
  database: after each single-shard update the incremental engine re-merges
  through its cached prefix/suffix partial products (O(S) convolutions, the
  changed shard's summary shipped as a row-suffix delta), while the full
  re-merge baseline re-ships every summary and re-runs the S(S-1)-conv
  legacy merge plus the global layout rebuild.  The run asserts 1e-9
  rank-matrix parity between both strategies after every update, the O(S)
  vs O(S^2) convolution budgets via merge-engine and backend counters, and
  (full scale, NumPy) a >= 3x median update-latency advantage.

Set ``REPRO_BENCH_SMOKE=1`` to shrink every case to seconds (the CI smoke
leg).  JSON results record the active backend, the traffic seed, and (for
E13d/E13e) the multiprocessing start method.
"""

from __future__ import annotations

import asyncio
import os
import time

from _harness import report
from repro.engine import get_backend
from repro.models import ShardedDatabase
from repro.serving import ServingExecutor
from repro.session import QuerySession
from repro.sharding.procpool import resolve_start_method
from repro.sharding.coordinator import ShardedQuerySession
from repro.workloads.scenarios import movie_rating_scenario
from repro.workloads.traffic import (
    generate_traffic,
    replay_traffic,
    update_heavy_traffic,
)

SEED = 20260730
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SCALE = 40.0 if SMOKE else 1200.0  # n = 400 smoke / 12_000 full
SHARD_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
EVENT_COUNT = 24 if SMOKE else 50
ROUNDS = 1 if SMOKE else 3  # median-of-ROUNDS replays per shard count
CONCURRENCY = 8
K = 10


def _database():
    return movie_rating_scenario(scale=SCALE).database


def _traffic(keys, update_ratio=0.4):
    return generate_traffic(
        keys,
        EVENT_COUNT,
        rng=SEED,
        update_ratio=update_ratio,
        k_choices=(K,),
        popular_pool=6,
    )


def _replay(sharded, events, **executor_options):
    async def run():
        async with ServingExecutor(sharded, **executor_options) as executor:
            # One warm query excludes one-time construction from the
            # steady-state throughput measurement.
            await executor.query("top_k_membership", k=K)
            start = time.perf_counter()
            await replay_traffic(executor, events, concurrency=CONCURRENCY)
            elapsed = time.perf_counter() - start
            return elapsed, executor.metrics()

    return asyncio.run(run())


def test_e13a_throughput_vs_shard_count(benchmark):
    database = _database()
    events = _traffic(database.tree.keys())
    update_count = sum(1 for event in events if event.is_update)
    rows = []
    single_shard_rate = None
    for shard_count in SHARD_COUNTS:
        # Median of a few replays: each replay rebuilds the sharded
        # database, so every round pays the same cold caches.
        runs = sorted(
            (
                _replay(
                    ShardedDatabase(database, shard_count, partitioner="hash"),
                    events,
                )
                for _ in range(ROUNDS)
            ),
            key=lambda run: run[0],
        )
        elapsed, metrics = runs[len(runs) // 2]
        rate = len(events) / elapsed
        if single_shard_rate is None:
            single_shard_rate = rate
        rows.append(
            (
                shard_count,
                len(database.tree.keys()),
                elapsed,
                rate,
                rate / single_shard_rate,
                metrics.latency_p50 * 1000.0,
                metrics.latency_p95 * 1000.0,
            )
        )
    speedup_4 = next(
        (row[4] for row in rows if row[0] == 4), rows[-1][4]
    )
    report(
        "E13a",
        "Serving throughput vs shard count (mixed read/update traffic)",
        ("shards", "tuples", "wall (s)", "events/s", "speedup vs 1",
         "p50 (ms)", "p95 (ms)"),
        rows,
        notes=(
            f"seed={SEED}; {len(events)} events ({update_count} updates), "
            f"concurrency={CONCURRENCY}, k={K}.  Updates rebuild and "
            "invalidate only the owning shard; the merge re-convolves the "
            f"unchanged shards' warm partials.  1 -> 4 shard speedup: "
            f"{speedup_4:.2f}x."
        ),
    )
    sharded = ShardedDatabase(database, SHARD_COUNTS[-1], partitioner="hash")
    benchmark.pedantic(
        lambda: _replay(sharded, events), rounds=1, iterations=1
    )


def test_e13b_coalesced_vs_naive_dispatch(benchmark):
    database = _database()
    # A bursty, read-heavy stream of popular queries: the regime request
    # coalescing targets (identical queries in flight concurrently).
    events = _traffic(database.tree.keys(), update_ratio=0.1)
    rows = []
    # The result cache is disabled on both sides: it would absorb every
    # repeat of a popular query after its first completion, leaving the
    # in-flight coalescing machinery (the thing this leg isolates) with
    # nothing to do on either side.
    for label, options in (
        ("coalesced", dict(coalesce=True, result_cache=False)),
        ("naive", dict(coalesce=False, result_cache=False)),
    ):
        sharded = ShardedDatabase(database, 4, partitioner="hash")
        elapsed, metrics = _replay(sharded, events, **options)
        rows.append(
            (
                label,
                elapsed,
                len(events) / elapsed,
                metrics.queries,
                metrics.coalesced,
                metrics.mean_batch_size,
                metrics.latency_p95 * 1000.0,
            )
        )
    report(
        "E13b",
        "Request coalescing vs naive dispatch (4 shards, bursty reads)",
        ("dispatch", "wall (s)", "events/s", "executed", "coalesced",
         "mean batch", "p95 (ms)"),
        rows,
        notes=(
            f"seed={SEED}.  Coalesced dispatch answers identical "
            "concurrent queries from one in-flight computation; naive "
            "dispatch executes each (still hitting the coordinator's "
            "memoized artifacts once warm)."
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e13c_merge_overhead_microbench(benchmark):
    database = _database()
    keys = database.tree.keys()
    rows = []
    start = time.perf_counter()
    unsharded = QuerySession(database.tree)
    unsharded.rank_matrix(K)
    unsharded_seconds = time.perf_counter() - start
    rows.append(("unsharded sweep", 1, unsharded_seconds, 1.0))
    for shard_count in SHARD_COUNTS[1:]:
        sharded = ShardedDatabase(database, shard_count, partitioner="hash")
        coordinator = sharded.coordinator()
        start = time.perf_counter()
        for session in sharded.sessions():
            session.partial_rank_summary(K)
        summaries_seconds = time.perf_counter() - start
        start = time.perf_counter()
        coordinator.rank_matrix(K)
        merge_seconds = time.perf_counter() - start
        rows.append(
            (
                f"summaries ({shard_count} shards)",
                shard_count,
                summaries_seconds,
                summaries_seconds / unsharded_seconds,
            )
        )
        rows.append(
            (
                f"merge ({shard_count} shards)",
                shard_count,
                merge_seconds,
                merge_seconds / unsharded_seconds,
            )
        )
    report(
        "E13c",
        f"Cross-shard merge overhead, n = {len(keys)}, k = {K}",
        ("stage", "shards", "seconds", "vs unsharded sweep"),
        rows,
        notes=(
            f"seed={SEED}.  'summaries' builds every shard's truncated "
            "prefix-polynomial table (the part a warm serving path "
            "amortizes across queries and re-pays only for updated "
            "shards); 'merge' gathers and convolves the partials into the "
            "exact global rank matrix."
        ),
    )
    benchmark.pedantic(
        lambda: ShardedDatabase(database, 4).coordinator().rank_matrix(K),
        rounds=1,
        iterations=1,
    )


def _assert_executor_parity(threads_db, processes_db, tolerance=1e-9):
    """1e-9 rank-matrix parity between executors, in the measured run."""
    reference = threads_db.coordinator().rank_matrix(K)
    merged = processes_db.coordinator().rank_matrix(K)
    assert set(reference.keys()) == set(merged.keys())
    for key in reference.keys():
        for expected, actual in zip(reference.row(key), merged.row(key)):
            assert abs(expected - actual) < tolerance, (key, expected, actual)


def test_e13d_threads_vs_processes_scaling(benchmark):
    database = _database()
    # Read-heavy popular stream: the shard-parallel regime (updates would
    # serialize on the owning shard either way).
    events = _traffic(database.tree.keys(), update_ratio=0.1)
    start_method = resolve_start_method()
    cores = os.cpu_count() or 1
    rows = []
    baselines = {}
    speedups = {}
    for shard_count in SHARD_COUNTS:
        for mode in ("threads", "processes"):
            sharded = ShardedDatabase(
                database, shard_count, partitioner="hash", executor=mode
            )
            try:
                if mode == "processes":
                    _assert_executor_parity(
                        ShardedDatabase(
                            database, shard_count, partitioner="hash"
                        ),
                        sharded,
                    )
                runs = sorted(
                    _replay(sharded, events)[0] for _ in range(ROUNDS)
                )
                elapsed = runs[len(runs) // 2]
            finally:
                sharded.close()
            rate = len(events) / elapsed
            baselines.setdefault(mode, rate)
            speedups[(mode, shard_count)] = rate / baselines[mode]
            rows.append(
                (
                    mode,
                    shard_count,
                    elapsed,
                    rate,
                    speedups[(mode, shard_count)],
                )
            )
    process_speedup_4 = speedups.get(
        ("processes", 4), speedups[("processes", SHARD_COUNTS[-1])]
    )
    thread_speedup_4 = speedups.get(
        ("threads", 4), speedups[("threads", SHARD_COUNTS[-1])]
    )
    report(
        "E13d",
        "Threads vs processes shard scaling (read-heavy traffic)",
        ("executor", "shards", "wall (s)", "events/s", "speedup vs 1"),
        rows,
        notes=(
            f"seed={SEED}, backend={get_backend().name}, "
            f"start_method={start_method}, cores={cores}, "
            f"n={len(database.tree.keys())}, k={K}.  Parity (1e-9 rank "
            "matrix) asserted between executors before timing.  1 -> 4 "
            f"shard speedup: threads {thread_speedup_4:.2f}x, processes "
            f"{process_speedup_4:.2f}x.  The >= 3x process bar applies on "
            ">= 4 physical cores at full scale; fewer cores cannot exhibit "
            "shard parallelism regardless of executor."
        ),
    )
    if not SMOKE and cores >= 4 and get_backend().name == "numpy":
        assert process_speedup_4 >= 3.0, (
            f"process-pool 1 -> 4 shard speedup {process_speedup_4:.2f}x "
            f"below the 3x bar on a {cores}-core host"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _percentiles(samples):
    ordered = sorted(samples)
    pick = lambda fraction: ordered[
        min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    ]
    return pick(0.50), pick(0.95)


def _assert_matrix_parity(reference, candidate, tolerance=1e-9):
    assert reference.keys() == candidate.keys()
    for key in reference.keys():
        for expected, actual in zip(reference.row(key), candidate.row(key)):
            assert abs(expected - actual) < tolerance, (key, expected, actual)


def test_e13f_incremental_vs_full_remerge(benchmark):
    shard_count = 4
    database = _database()
    sharded = ShardedDatabase(
        database, shard_count, partitioner="hash", executor="processes"
    )
    try:
        pool = sharded.process_pool()
        incremental = ShardedQuerySession(sharded, merge_mode="incremental")
        full = ShardedQuerySession(sharded, merge_mode="rebuild")
        incremental.rank_matrix(K)
        full.rank_matrix(K)
        events = update_heavy_traffic(
            database.tree.keys(),
            EVENT_COUNT,
            rng=SEED,
            update_ratio=0.4,
            k_choices=(K,),
        )
        updates = [event for event in events if event.is_update]
        assert updates, "update-heavy stream produced no updates"
        backend = get_backend()
        ipc_before = pool.stats()
        incremental_times = []
        full_times = []
        conv_budget = 3 * shard_count - 2
        legacy_floor = shard_count * (shard_count - 1)
        for event in updates:
            sharded.update_tuple(event.key, probability=event.probability)
            # The owning worker's summary recompute and its delta ship are
            # warmed here, outside both timed regions: the comparison is
            # re-merge vs re-merge, not shard-local sweep vs itself.
            pool.prefetch([K])
            stats_before = incremental.merge_stats()
            start = time.perf_counter()
            merged = incremental.rank_matrix(K)
            incremental_times.append((time.perf_counter() - start) * 1000.0)
            stats_delta = incremental.merge_stats() - stats_before
            assert stats_delta.incremental_merges == 1
            assert stats_delta.convolutions <= conv_budget, (
                f"incremental re-merge spent {stats_delta.convolutions} "
                f"convolutions; O(S) budget is {conv_budget}"
            )
            # Full re-merge baseline on the very same update: cold
            # coordinator (summaries re-shipped, layout rebuilt, legacy
            # S(S-1) merge) against warm worker-side shard state.
            pool.forget_cached_summaries()
            full.invalidate()
            legacy_before = backend.kernel_calls("convolve_rows")
            start = time.perf_counter()
            rebuilt = full.rank_matrix(K)
            full_times.append((time.perf_counter() - start) * 1000.0)
            legacy_convs = (
                backend.kernel_calls("convolve_rows") - legacy_before
            )
            assert legacy_convs >= legacy_floor, (
                f"legacy merge spent {legacy_convs} convolutions; expected "
                f"the full S(S-1) = {legacy_floor}"
            )
            _assert_matrix_parity(merged, rebuilt)
        ipc_delta = pool.stats() - ipc_before
        assert ipc_delta.summary_deltas > 0, "no summary delta was shipped"
        merge_stats = incremental.merge_stats()
        assert merge_stats.incremental_merges > 0, "no incremental re-merge"
        inc_p50, inc_p95 = _percentiles(incremental_times)
        full_p50, full_p95 = _percentiles(full_times)
        advantage = full_p50 / inc_p50 if inc_p50 else float("inf")
        rows = [
            (
                "incremental",
                len(updates),
                inc_p50,
                inc_p95,
                merge_stats.convolutions,
                ipc_delta.summary_deltas,
                ipc_delta.delta_rows_saved,
            ),
            (
                "full re-merge",
                len(updates),
                full_p50,
                full_p95,
                legacy_convs * len(updates),
                0,
                0,
            ),
        ]
        report(
            "E13f",
            f"Incremental vs full re-merge, {shard_count} shards, "
            f"n = {len(database.tree.keys())}, k = {K}, update-heavy",
            ("strategy", "updates", "p50 (ms)", "p95 (ms)", "convolutions",
             "deltas shipped", "delta rows saved"),
            rows,
            notes=(
                f"seed={SEED}, backend={get_backend().name}, "
                f"executor=processes, update_ratio=0.4 (zipf popularity).  "
                "Each update re-merges twice on the same shard state: "
                "through the cached prefix/suffix partial products "
                f"(<= {conv_budget} convolutions, summary delta shipped) "
                "and from scratch (summaries re-shipped, layout rebuilt, "
                f">= {legacy_floor} convolutions); 1e-9 parity asserted "
                f"per update.  Median advantage: {advantage:.2f}x."
            ),
        )
        if not SMOKE and get_backend().name == "numpy":
            assert advantage >= 3.0, (
                f"incremental re-merge advantage {advantage:.2f}x is below "
                "the 3x bar"
            )
    finally:
        sharded.close()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e13e_ipc_transport_microbench(benchmark):
    database = _database()
    start_method = resolve_start_method()
    rounds = 3 if SMOKE else 10
    rows = []
    for transport in ("never", "always"):
        if transport == "always" and get_backend().name != "numpy":
            continue  # shared memory ships numpy tables only
        sharded = ShardedDatabase(
            database,
            4,
            partitioner="hash",
            executor="processes",
            executor_options={"shm": transport},
        )
        try:
            pool = sharded.process_pool()
            pool.summaries(K)  # workers compute + memoize their sweeps
            start = time.perf_counter()
            for _ in range(rounds):
                # use_cache=False forces a full exchange each round, so
                # this times transport (pickle vs one memcpy), not compute.
                pool.summaries(K, use_cache=False)
            elapsed = (time.perf_counter() - start) / rounds
            stats = pool.stats()
            label = "pipe-pickle" if transport == "never" else "shared-memory"
            rows.append(
                (
                    label,
                    elapsed * 1000.0,
                    stats.total_bytes,
                    stats.pipe_messages,
                    stats.shm_messages,
                )
            )
        finally:
            sharded.close()
    report(
        "E13e",
        f"Summary exchange transport, 4 shards, n = "
        f"{len(database.tree.keys())}, k = {K}",
        ("transport", "exchange (ms)", "bytes shipped", "pipe msgs",
         "shm msgs"),
        rows,
        notes=(
            f"seed={SEED}, backend={get_backend().name}, "
            f"start_method={start_method}.  Each exchange re-ships every "
            "shard's (n_s+1) x k prefix table; shared memory replaces the "
            "pickle round-trip with one memcpy per table."
        ),
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
